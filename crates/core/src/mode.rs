//! Translation modes and their trade-offs (Figure 3 / Table II).

use core::fmt;

/// How freely a virtualization feature can be used under a mode (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// The feature works for all memory.
    Unrestricted,
    /// The feature works only for memory outside the direct segment(s).
    Limited,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Support::Unrestricted => "unrestricted",
            Support::Limited => "limited",
        })
    }
}

/// The six translation modes of Figure 3: two native (1D) and four
/// virtualized (2D) configurations, four of which use the proposed
/// direct-segment hardware (shaded in the figure).
///
/// # Example
///
/// ```
/// use mv_core::TranslationMode;
///
/// let m = TranslationMode::DualDirect;
/// assert_eq!(m.walk_dimensions(), 0);
/// assert_eq!(m.common_walk_refs(), 0);
/// assert!(m.requires_guest_os_changes() && m.requires_vmm_changes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranslationMode {
    /// Native execution with conventional 4-level paging (1D walk).
    BaseNative,
    /// Native execution with a direct segment (the original Basu et al.
    /// proposal, re-implemented on the less intrusive L2-parallel hardware
    /// of Section III.D).
    NativeDirect,
    /// Virtualized execution with hardware nested paging (2D walk, the
    /// x86-64 status quo).
    BaseVirtualized,
    /// Both levels mapped by direct segments: gVA→gPA *and* gPA→hPA by
    /// addition — a 0D walk for addresses inside both segments
    /// (Section III.A).
    DualDirect,
    /// Second level (gPA→hPA) mapped by the VMM segment; guest uses
    /// ordinary paging. TLB misses walk only the guest page table: a 1D
    /// walk with 4 references plus 5 base-bound checks (Section III.B).
    VmmDirect,
    /// First level (gVA→gPA) mapped by the guest segment; the VMM keeps
    /// nested paging (preserving sharing/migration). A 1D walk with 4
    /// references plus 1 check (Section III.C).
    GuestDirect,
}

impl TranslationMode {
    /// All modes, in Figure 3's left-to-right order.
    pub const ALL: [TranslationMode; 6] = [
        TranslationMode::BaseNative,
        TranslationMode::NativeDirect,
        TranslationMode::BaseVirtualized,
        TranslationMode::DualDirect,
        TranslationMode::VmmDirect,
        TranslationMode::GuestDirect,
    ];

    /// The four virtualized modes (Table II columns).
    pub const VIRTUALIZED: [TranslationMode; 4] = [
        TranslationMode::BaseVirtualized,
        TranslationMode::DualDirect,
        TranslationMode::VmmDirect,
        TranslationMode::GuestDirect,
    ];

    /// Whether the mode runs under a VMM.
    pub fn is_virtualized(self) -> bool {
        !matches!(
            self,
            TranslationMode::BaseNative | TranslationMode::NativeDirect
        )
    }

    /// Page-walk dimensionality for addresses on the mode's fast path
    /// (Table II row 1).
    pub fn walk_dimensions(self) -> u8 {
        match self {
            TranslationMode::BaseNative | TranslationMode::NativeDirect => 1,
            TranslationMode::BaseVirtualized => 2,
            TranslationMode::DualDirect => 0,
            TranslationMode::VmmDirect | TranslationMode::GuestDirect => 1,
        }
    }

    /// Memory accesses for most page walks (Table II row 2). `NativeDirect`
    /// is 0 inside the segment (pure calculation).
    pub fn common_walk_refs(self) -> u32 {
        match self {
            TranslationMode::BaseNative => 4,
            TranslationMode::NativeDirect => 0,
            TranslationMode::BaseVirtualized => 24,
            TranslationMode::DualDirect => 0,
            TranslationMode::VmmDirect | TranslationMode::GuestDirect => 4,
        }
    }

    /// Base-bound checks per walk (Table II row 3). VMM Direct checks each
    /// of the four guest page-table pointers plus the final gPA.
    pub fn bound_checks(self) -> u32 {
        match self {
            TranslationMode::BaseNative => 0,
            TranslationMode::NativeDirect => 1,
            TranslationMode::BaseVirtualized => 0,
            TranslationMode::DualDirect => 1,
            TranslationMode::VmmDirect => 5,
            TranslationMode::GuestDirect => 1,
        }
    }

    /// Whether the guest OS must be modified (Table II row 4).
    pub fn requires_guest_os_changes(self) -> bool {
        matches!(
            self,
            TranslationMode::NativeDirect | TranslationMode::DualDirect | TranslationMode::GuestDirect
        )
    }

    /// Whether the VMM must be modified (Table II row 5).
    pub fn requires_vmm_changes(self) -> bool {
        matches!(self, TranslationMode::DualDirect | TranslationMode::VmmDirect)
    }

    /// Whether the mode suits arbitrary applications or only big-memory
    /// ones with a primary region (Table II row 6).
    pub fn suits_any_application(self) -> bool {
        matches!(
            self,
            TranslationMode::BaseNative | TranslationMode::BaseVirtualized | TranslationMode::VmmDirect
        )
    }

    /// Content-based page sharing support (Table II row 7); `None` for
    /// native modes where the feature does not apply.
    pub fn page_sharing(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Limited, Support::Unrestricted)
    }

    /// Ballooning support (Table II row 8).
    pub fn ballooning(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Limited, Support::Unrestricted)
    }

    /// Guest swapping support (Table II row 9).
    pub fn guest_swapping(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Unrestricted, Support::Limited)
    }

    /// VMM swapping support (Table II row 10).
    pub fn vmm_swapping(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Limited, Support::Unrestricted)
    }

    fn feature(
        self,
        base: Support,
        dual: Support,
        vmm: Support,
        guest: Support,
    ) -> Option<Support> {
        match self {
            TranslationMode::BaseVirtualized => Some(base),
            TranslationMode::DualDirect => Some(dual),
            TranslationMode::VmmDirect => Some(vmm),
            TranslationMode::GuestDirect => Some(guest),
            _ => None,
        }
    }

    /// Configuration label used in the paper's figures (e.g. `"DD"`,
    /// `"4K+VD"` uses this as suffix).
    pub fn label(self) -> &'static str {
        match self {
            TranslationMode::BaseNative => "base",
            TranslationMode::NativeDirect => "DS",
            TranslationMode::BaseVirtualized => "virt",
            TranslationMode::DualDirect => "DD",
            TranslationMode::VmmDirect => "VD",
            TranslationMode::GuestDirect => "GD",
        }
    }
}

impl fmt::Display for TranslationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TranslationMode::BaseNative => "Base Native",
            TranslationMode::NativeDirect => "Direct Segment",
            TranslationMode::BaseVirtualized => "Base Virtualized",
            TranslationMode::DualDirect => "Dual Direct",
            TranslationMode::VmmDirect => "VMM Direct",
            TranslationMode::GuestDirect => "Guest Direct",
        })
    }
}

/// Which segments a guest address fell into — the four columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentCategory {
    /// In both the guest and VMM segments: 0D translation by two additions.
    Both,
    /// Only the final gPA range is covered by the VMM segment: guest walk
    /// with nested references replaced by additions.
    VmmOnly,
    /// Only in the guest segment: gPA by addition, then a nested walk.
    GuestOnly,
    /// In neither segment: full 2D nested walk.
    Neither,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_row_1_dimensions() {
        use TranslationMode::*;
        assert_eq!(BaseVirtualized.walk_dimensions(), 2);
        assert_eq!(DualDirect.walk_dimensions(), 0);
        assert_eq!(VmmDirect.walk_dimensions(), 1);
        assert_eq!(GuestDirect.walk_dimensions(), 1);
    }

    #[test]
    fn table_ii_row_2_memory_accesses() {
        use TranslationMode::*;
        assert_eq!(BaseVirtualized.common_walk_refs(), 24);
        assert_eq!(DualDirect.common_walk_refs(), 0);
        assert_eq!(VmmDirect.common_walk_refs(), 4);
        assert_eq!(GuestDirect.common_walk_refs(), 4);
    }

    #[test]
    fn table_ii_row_3_bound_checks() {
        use TranslationMode::*;
        assert_eq!(BaseVirtualized.bound_checks(), 0);
        assert_eq!(DualDirect.bound_checks(), 1);
        assert_eq!(VmmDirect.bound_checks(), 5);
        assert_eq!(GuestDirect.bound_checks(), 1);
    }

    #[test]
    fn table_ii_rows_4_5_required_changes() {
        use TranslationMode::*;
        assert!(!BaseVirtualized.requires_guest_os_changes());
        assert!(!BaseVirtualized.requires_vmm_changes());
        assert!(DualDirect.requires_guest_os_changes());
        assert!(DualDirect.requires_vmm_changes());
        assert!(!VmmDirect.requires_guest_os_changes());
        assert!(VmmDirect.requires_vmm_changes());
        assert!(GuestDirect.requires_guest_os_changes());
        assert!(!GuestDirect.requires_vmm_changes());
    }

    #[test]
    fn table_ii_row_6_application_category() {
        use TranslationMode::*;
        assert!(BaseVirtualized.suits_any_application());
        assert!(VmmDirect.suits_any_application());
        assert!(!DualDirect.suits_any_application());
        assert!(!GuestDirect.suits_any_application());
    }

    #[test]
    fn table_ii_rows_7_to_10_feature_matrix() {
        use Support::*;
        use TranslationMode::*;
        // Page sharing
        assert_eq!(BaseVirtualized.page_sharing(), Some(Unrestricted));
        assert_eq!(DualDirect.page_sharing(), Some(Limited));
        assert_eq!(VmmDirect.page_sharing(), Some(Limited));
        assert_eq!(GuestDirect.page_sharing(), Some(Unrestricted));
        // Ballooning
        assert_eq!(VmmDirect.ballooning(), Some(Limited));
        assert_eq!(GuestDirect.ballooning(), Some(Unrestricted));
        // Guest swapping
        assert_eq!(VmmDirect.guest_swapping(), Some(Unrestricted));
        assert_eq!(GuestDirect.guest_swapping(), Some(Limited));
        // VMM swapping
        assert_eq!(VmmDirect.vmm_swapping(), Some(Limited));
        assert_eq!(GuestDirect.vmm_swapping(), Some(Unrestricted));
        // Features do not apply natively.
        assert_eq!(BaseNative.page_sharing(), None);
    }

    #[test]
    fn native_modes_are_not_virtualized() {
        assert!(!TranslationMode::BaseNative.is_virtualized());
        assert!(!TranslationMode::NativeDirect.is_virtualized());
        for m in TranslationMode::VIRTUALIZED {
            assert!(m.is_virtualized());
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(TranslationMode::DualDirect.label(), "DD");
        assert_eq!(TranslationMode::DualDirect.to_string(), "Dual Direct");
        assert_eq!(TranslationMode::VmmDirect.label(), "VD");
    }
}
