//! The escape filter (Section V).
//!
//! A single faulty physical page would otherwise prevent creating a large
//! direct segment. The escape filter is a small hardware Bloom filter
//! checked in parallel with the segment registers: a page whose frame
//! number hits in the filter "escapes" segment translation and falls back
//! to conventional paging, so the OS/VMM can remap it. Because a Bloom
//! filter has false positives, the VMM must also create page-table mappings
//! for falsely-escaped pages — correctness is preserved, only a little
//! performance is lost.
//!
//! The paper evaluates a 256-bit parallel Bloom filter with four H3 hash
//! functions (citing Sanchez et al. on transactional-memory signatures) and
//! shows it absorbs 16 faulty pages with under 0.06% slowdown (Figure 13).
//! Other geometries can be constructed with
//! [`EscapeFilter::with_geometry`] for ablation studies.

use mv_types::rng::StdRng;

/// Default number of filter bits (2^8 = 256, as evaluated in the paper).
pub const FILTER_BITS: usize = 256;

/// Default number of H3 hash functions.
pub const NUM_HASHES: usize = 4;

/// A parallel Bloom filter over 4 KiB frame numbers, using H3 hash
/// functions.
///
/// H3 hashing computes each output bit as the parity of the input ANDed
/// with a fixed random row, which is cheap in hardware (one XOR tree per
/// bit). The rows are derived deterministically from a seed so simulations
/// are reproducible.
///
/// # Example
///
/// ```
/// use mv_core::EscapeFilter;
///
/// let mut f = EscapeFilter::new(7);
/// assert!(!f.maybe_contains(0x5000));
/// f.insert(0x5000);
/// assert!(f.maybe_contains(0x5000), "no false negatives");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeFilter {
    bits: Vec<u64>,
    index_bits: u32,
    /// H3 matrices: one row of 64 random bits per output bit per hash.
    rows: Vec<Vec<u64>>,
    inserted: u32,
}

impl EscapeFilter {
    /// Creates an empty 256-bit, 4-hash filter (the paper's geometry)
    /// whose H3 matrices derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_geometry(seed, FILTER_BITS, NUM_HASHES)
    }

    /// Creates a filter of `filter_bits` bits (a power of two between 2
    /// and 2^20) with `num_hashes` H3 hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `filter_bits` is not a power of two in range, or
    /// `num_hashes` is 0.
    pub fn with_geometry(seed: u64, filter_bits: usize, num_hashes: usize) -> Self {
        assert!(
            filter_bits.is_power_of_two() && (2..=(1 << 20)).contains(&filter_bits),
            "filter_bits must be a power of two in [2, 2^20]"
        );
        assert!(num_hashes > 0, "need at least one hash function");
        let index_bits = filter_bits.trailing_zeros();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe5ca_9ef1_17e5);
        let rows = (0..num_hashes)
            .map(|_| (0..index_bits).map(|_| rng.next_word()).collect())
            .collect();
        EscapeFilter {
            bits: vec![0; filter_bits.div_ceil(64)],
            index_bits,
            rows,
            inserted: 0,
        }
    }

    /// Filter size in bits.
    pub fn filter_bits(&self) -> usize {
        1 << self.index_bits
    }

    /// Number of H3 hash functions.
    pub fn num_hashes(&self) -> usize {
        self.rows.len()
    }

    /// One H3 hash: an `index_bits`-bit index into the filter.
    fn h3(&self, hash: usize, key: u64) -> usize {
        let mut idx = 0usize;
        for (bit, row) in self.rows[hash].iter().enumerate() {
            idx |= (((key & row).count_ones() as usize) & 1) << bit;
        }
        idx
    }

    /// Inserts the page with base address `page_addr` (any address within
    /// the page works; the 4 KiB frame number is the key).
    pub fn insert(&mut self, page_addr: u64) {
        let key = page_addr >> 12;
        for h in 0..self.rows.len() {
            let idx = self.h3(h, key);
            self.bits[idx / 64] |= 1 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Whether the page containing `page_addr` may be escaped. False
    /// positives are possible; false negatives are not.
    ///
    /// A filter holding nothing escapes nothing. The explicit guards make
    /// that structurally true: the `inserted == 0` fast path skips the
    /// hash work entirely on the (common) pristine filter, and the
    /// `rows.is_empty()` check closes the vacuous-truth hole — `all()`
    /// over zero hash rows would return `true` for *every* address,
    /// turning a degenerate zero-hash filter into one that escapes the
    /// whole address space. Construction rejects that geometry (see
    /// `zero_hash_geometry_panics`), and this guard keeps the answer safe
    /// even for a filter obtained some other way.
    #[inline]
    pub fn maybe_contains(&self, page_addr: u64) -> bool {
        if self.inserted == 0 || self.rows.is_empty() {
            return false;
        }
        let key = page_addr >> 12;
        (0..self.rows.len()).all(|h| {
            let idx = self.h3(h, key);
            self.bits[idx / 64] & (1 << (idx % 64)) != 0
        })
    }

    /// Whether no pages have been inserted.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of insertions performed.
    pub fn inserted(&self) -> u32 {
        self.inserted
    }

    /// Fraction of filter bits set — a proxy for expected false-positive
    /// rate ((set/total)^k).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.filter_bits() as f64
    }

    /// Expected false-positive probability given the current fill.
    pub fn expected_false_positive_rate(&self) -> f64 {
        self.fill_ratio().powi(self.num_hashes() as i32)
    }

    /// Clears the filter (keeps the hash matrices).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_rejects_everything() {
        let f = EscapeFilter::new(1);
        assert!(f.is_empty());
        assert_eq!(f.filter_bits(), 256);
        assert_eq!(f.num_hashes(), 4);
        for addr in [0u64, 0x1000, 0xdead_b000, !0xfffu64] {
            assert!(!f.maybe_contains(addr));
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut f = EscapeFilter::new(2);
        let pages: Vec<u64> = (0..16).map(|i| 0x10_0000 + i * 0x1000).collect();
        for &p in &pages {
            f.insert(p);
        }
        for &p in &pages {
            assert!(f.maybe_contains(p));
        }
        assert_eq!(f.inserted(), 16);
    }

    #[test]
    fn any_address_within_the_page_matches() {
        let mut f = EscapeFilter::new(3);
        f.insert(0x5000);
        assert!(f.maybe_contains(0x5fff));
        assert!(f.maybe_contains(0x5001));
    }

    #[test]
    fn false_positive_rate_is_low_with_16_entries() {
        // The paper's sizing claim: 256 bits / 4 hashes / 16 bad pages
        // keeps false positives near zero.
        let mut f = EscapeFilter::new(4);
        for i in 0..16u64 {
            f.insert(0x100_0000 + i * 0x1000);
        }
        let probes = 100_000u64;
        let fps = (0..probes)
            .filter(|i| f.maybe_contains(0x9000_0000 + i * 0x1000))
            .count();
        let rate = fps as f64 / probes as f64;
        assert!(
            rate < 0.01,
            "false-positive rate {rate} too high for 16 entries"
        );
        assert!(f.expected_false_positive_rate() < 0.01);
    }

    #[test]
    fn smaller_filters_have_more_false_positives() {
        let measure = |bits: usize| {
            let mut f = EscapeFilter::with_geometry(9, bits, 4);
            for i in 0..16u64 {
                f.insert(i * 0x1000);
            }
            let probes = 50_000u64;
            (0..probes)
                .filter(|i| f.maybe_contains(0x5000_0000 + i * 0x1000))
                .count() as f64
                / probes as f64
        };
        let small = measure(64);
        let default = measure(256);
        let large = measure(1024);
        assert!(small > default, "64-bit filter fp {small} vs 256-bit {default}");
        assert!(default >= large, "256-bit fp {default} vs 1024-bit {large}");
    }

    #[test]
    fn different_seeds_give_different_hashes() {
        let mut a = EscapeFilter::new(10);
        let mut b = EscapeFilter::new(11);
        a.insert(0x1000);
        b.insert(0x1000);
        assert_ne!(a.bits, b.bits);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = EscapeFilter::new(10);
        let mut b = EscapeFilter::new(10);
        a.insert(0x1000);
        b.insert(0x1000);
        assert_eq!(a, b);
    }

    #[test]
    fn clear_resets_contents() {
        let mut f = EscapeFilter::new(5);
        f.insert(0x1000);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.maybe_contains(0x1000));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn fill_ratio_grows_with_insertions() {
        let mut f = EscapeFilter::new(6);
        let r0 = f.fill_ratio();
        f.insert(0x1000);
        let r1 = f.fill_ratio();
        assert!(r1 > r0);
        assert!(r1 <= (NUM_HASHES as f64) / FILTER_BITS as f64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_geometry_panics() {
        let _ = EscapeFilter::with_geometry(0, 100, 4);
    }

    #[test]
    #[should_panic(expected = "at least one hash function")]
    fn zero_hash_geometry_panics() {
        // A zero-hash filter would make `maybe_contains`'s `all()` over
        // the hash rows vacuously true — every page would escape. The
        // constructor must reject the geometry outright.
        let _ = EscapeFilter::with_geometry(0, 256, 0);
    }

    #[test]
    fn pristine_filter_never_escapes_even_without_hash_rows() {
        // Defense in depth for the vacuous-truth hole: even if a filter
        // with zero hash rows existed (bypassing the constructor assert),
        // `maybe_contains` must answer false, not escape every address.
        let mut f = EscapeFilter::new(8);
        f.rows.clear(); // simulate the degenerate geometry directly
        assert_eq!(f.num_hashes(), 0);
        for addr in [0u64, 0x1000, 0xdead_b000, !0xfffu64] {
            assert!(
                !f.maybe_contains(addr),
                "zero-hash filter must escape nothing, not everything"
            );
        }
        // The guard holds even once an insertion bumps the counter.
        f.inserted = 1;
        assert!(!f.maybe_contains(0x1000));
    }
}
