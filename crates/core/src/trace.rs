//! DTLB-miss tracing — the simulator's BadgerTrap.
//!
//! The paper's methodology (Section VII) instruments every DTLB miss with
//! BadgerTrap, extracts each miss's gVA and gPA, classifies the miss
//! against the would-be segment ranges, and feeds the resulting fractions
//! into the Table IV linear models. [`MissTrace`] replicates that
//! instrument: when attached to an [`crate::Mmu`], every page walk logs a
//! [`MissRecord`], which offline analysis can classify exactly as the
//! paper does — *without* running the proposed modes at all.

use mv_types::{Gpa, Gva};

/// One traced DTLB miss (page-walk invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRecord {
    /// Faulting guest virtual address.
    pub gva: Gva,
    /// Guest physical address it resolved to (the final gPA of the first
    /// translation dimension).
    pub gpa: Gpa,
    /// Whether the access was a write.
    pub write: bool,
}

/// A bounded in-memory DTLB-miss trace.
///
/// Keeps the *first* `capacity` records and counts the rest as dropped —
/// the complement of [`mv_obs::FlightRecorder`], which keeps the *last*
/// `capacity`. A trace with `capacity == 0` captures nothing and counts
/// every record as dropped; it is trivially [`full`](MissTrace::is_full).
///
/// # Example
///
/// ```
/// use mv_core::{MissRecord, MissTrace};
/// use mv_types::{Gpa, Gva};
///
/// let mut t = MissTrace::new(2);
/// t.record(MissRecord { gva: Gva::new(0x1000), gpa: Gpa::new(0x2000), write: false });
/// t.record(MissRecord { gva: Gva::new(0x3000), gpa: Gpa::new(0x4000), write: true });
/// t.record(MissRecord { gva: Gva::new(0x5000), gpa: Gpa::new(0x6000), write: false });
/// assert_eq!(t.records().len(), 2, "bounded at capacity");
/// assert!(t.is_full());
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.iter().filter(|r| r.write).count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MissTrace {
    records: Vec<MissRecord>,
    capacity: usize,
    dropped: u64,
}

impl MissTrace {
    /// Creates a trace that keeps at most `capacity` records (the rest are
    /// counted but dropped, like a sampling run out of buffer).
    pub fn new(capacity: usize) -> Self {
        MissTrace {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record (or counts it as dropped when full).
    pub fn record(&mut self, r: MissRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// The captured records.
    pub fn records(&self) -> &[MissRecord] {
        &self.records
    }

    /// Iterates over the captured records in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, MissRecord> {
        self.records.iter()
    }

    /// The capacity this trace was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been captured (either no misses yet, or a
    /// zero-capacity trace).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` once the buffer holds `capacity` records and further misses
    /// are only counted as dropped. A zero-capacity trace is always full.
    pub fn is_full(&self) -> bool {
        self.records.len() >= self.capacity
    }

    /// Discards captured records and the dropped count, keeping the
    /// capacity — ready to capture a fresh window.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// Records that arrived after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total misses observed (captured + dropped).
    pub fn total(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }

    /// Classifies every captured miss against hypothetical guest and VMM
    /// segments, returning the Table IV fractions
    /// `(F_DD, F_VD, F_GD)` — exactly the paper's Section VII
    /// classification, computed offline from a Base Virtualized trace.
    pub fn classify(
        &self,
        guest_seg: &crate::Segment<Gva, Gpa>,
        vmm_seg: &crate::Segment<Gpa, mv_types::Hpa>,
    ) -> (f64, f64, f64) {
        if self.records.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut dd = 0u64;
        let mut vd = 0u64;
        let mut gd = 0u64;
        for r in &self.records {
            let in_g = guest_seg.contains(r.gva);
            // For addresses the guest segment would cover, the gPA it
            // would produce (not the traced one) decides the VMM side.
            let gpa = if in_g {
                guest_seg.translate_unchecked(r.gva)
            } else {
                r.gpa
            };
            let in_v = vmm_seg.contains(gpa);
            match (in_g, in_v) {
                (true, true) => dd += 1,
                (false, true) => vd += 1,
                (true, false) => gd += 1,
                (false, false) => {}
            }
        }
        let n = self.records.len() as f64;
        (dd as f64 / n, vd as f64 / n, gd as f64 / n)
    }
}

impl<'a> IntoIterator for &'a MissTrace {
    type Item = &'a MissRecord;
    type IntoIter = std::slice::Iter<'a, MissRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;
    use mv_types::{AddrRange, Hpa, MIB};

    fn rec(gva: u64, gpa: u64) -> MissRecord {
        MissRecord {
            gva: Gva::new(gva),
            gpa: Gpa::new(gpa),
            write: false,
        }
    }

    #[test]
    fn classification_partitions_the_trace() {
        let gseg: Segment<Gva, Gpa> = Segment::map(
            AddrRange::from_start_len(Gva::new(1 << 30), 16 * MIB),
            Gpa::new(16 * MIB),
        );
        let vseg: Segment<Gpa, Hpa> = Segment::map(
            AddrRange::from_start_len(Gpa::new(0), 24 * MIB),
            Hpa::new(0),
        );
        let mut t = MissTrace::new(16);
        t.record(rec(1 << 30, 999)); // in gseg → gpa 16M → in vseg: DD
        t.record(rec((1 << 30) + 9 * MIB, 999)); // gseg → gpa 25M: GD only
        t.record(rec(0x1000, 4 * MIB)); // not gseg, gpa in vseg: VD only
        t.record(rec(0x2000, 30 * MIB)); // neither
        let (dd, vd, gd) = t.classify(&gseg, &vseg);
        assert_eq!(dd, 0.25);
        assert_eq!(vd, 0.25);
        assert_eq!(gd, 0.25);
    }

    #[test]
    fn empty_trace_classifies_to_zero() {
        let t = MissTrace::new(4);
        let gseg: Segment<Gva, Gpa> = Segment::nullified();
        let vseg: Segment<Gpa, Hpa> = Segment::nullified();
        assert_eq!(t.classify(&gseg, &vseg), (0.0, 0.0, 0.0));
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = MissTrace::new(3);
        assert!(!t.is_full());
        for i in 0..10 {
            t.record(rec(i * 0x1000, i * 0x1000));
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.len(), 3);
        assert!(t.is_full());
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.total(), 10);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut t = MissTrace::new(0);
        assert!(t.is_full(), "a zero-capacity trace is full from the start");
        assert!(t.is_empty());
        for i in 0..5 {
            t.record(rec(i * 0x1000, i * 0x1000));
        }
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 5);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn clear_resets_for_a_fresh_window() {
        let mut t = MissTrace::new(2);
        for i in 0..4 {
            t.record(rec(i * 0x1000, i * 0x1000));
        }
        assert_eq!((t.len(), t.dropped()), (2, 2));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), 2, "capacity survives clear");
        t.record(rec(0x9000, 0x9000));
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn iteration_yields_arrival_order() {
        let mut t = MissTrace::new(4);
        for i in 0..3 {
            t.record(rec(i * 0x1000, i * 0x2000));
        }
        let gvas: Vec<u64> = t.iter().map(|r| r.gva.as_u64()).collect();
        assert_eq!(gvas, [0x0, 0x1000, 0x2000]);
        let by_ref: Vec<u64> = (&t).into_iter().map(|r| r.gpa.as_u64()).collect();
        assert_eq!(by_ref, [0x0, 0x2000, 0x4000]);
    }
}
