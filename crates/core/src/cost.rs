//! Walk-cost model: cycles charged per page-walk event.
//!
//! The paper measures page-walk cycles with performance counters; the
//! simulator instead charges each walk memory reference according to where
//! its PTE cache line would be found. Page-table entries are cached in the
//! regular data-cache hierarchy (Bhargava et al.), so upper-level entries —
//! touched on every walk — hit near the core while random leaf entries go
//! to DRAM. A small set-associative model of PTE-line residency captures
//! exactly that gradient, and the paper's Δ (1 cycle per base-bound check)
//! is charged for segment checks.

use mv_tlb::AssocCache;

/// Cycle prices for translation events.
///
/// # Example
///
/// ```
/// use mv_core::CostParams;
///
/// let c = CostParams::default();
/// assert!(c.dram < 10 * c.cache_hit);
/// assert_eq!(c.bound_check, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostParams {
    /// L2-TLB hit charged on the L1-miss path.
    pub l2_tlb_hit: u64,
    /// One base-bound check (the paper's Δ unit).
    pub bound_check: u64,
    /// Walk reference that hits in the cached-PTE model.
    pub cache_hit: u64,
    /// Walk reference that misses to DRAM.
    pub dram: u64,
    /// Page-walk-cache hit (skipping upper levels).
    pub pwc_hit: u64,
    /// Nested-TLB hit during a walk's second-dimension translation.
    pub nested_tlb_hit: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            l2_tlb_hit: 7,
            bound_check: 1,
            cache_hit: 18,
            dram: 160,
            pwc_hit: 1,
            nested_tlb_hit: 7,
        }
    }
}

/// Models which page-table cache lines are resident in the data-cache
/// hierarchy. Keys are 64-byte line addresses (eight PTEs per line), so a
/// sequential scan of a page table enjoys spatial locality exactly as real
/// hardware does.
///
/// # Example
///
/// ```
/// use mv_core::{CostParams, PteCache};
///
/// let costs = CostParams::default();
/// let mut pc = PteCache::new(4096, 8);
/// let first = pc.access(0x1000, &costs);
/// let second = pc.access(0x1008, &costs); // same 64-byte line
/// assert_eq!(first, costs.dram);
/// assert_eq!(second, costs.cache_hit);
/// ```
#[derive(Debug)]
pub struct PteCache {
    lines: AssocCache<u64, ()>,
}

/// Hashes a 64-byte line address to a set index, as real last-level
/// caches hash physical addresses, so regular page-table-page strides
/// cannot alias pathologically.
///
/// The full 64-bit product's *upper* half is kept before the cache
/// reduces it to `[0, nsets)` — masked for power-of-two set counts,
/// modulo otherwise. Both reductions stay uniform because a golden-ratio
/// multiply diffuses every input bit into the kept half: low bits of the
/// hash (the masked ones) depend on all bits of `line`, and the 32-bit
/// range is so much larger than any set count that modulo bias is
/// negligible. A truncating variant that kept the *low* product half
/// would alias sequential lines of one page-table page onto a handful of
/// sets; `set_hash_spreads_structured_strides` pins the distribution for
/// both power-of-two and non-power-of-two geometries.
#[inline]
fn set_hash(line: u64) -> usize {
    (line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize
}

impl PteCache {
    /// Creates a residency model of `lines` cache lines with `ways`
    /// associativity. The default simulator configuration uses 4096 lines
    /// (256 KiB of PTE-line capacity, roughly the share of a last-level
    /// cache that page-table lines keep under a walk-heavy workload).
    pub fn new(lines: usize, ways: usize) -> Self {
        PteCache {
            lines: AssocCache::new(lines / ways, ways),
        }
    }

    /// Default geometry used by the experiments.
    pub fn default_geometry() -> Self {
        Self::new(4096, 8)
    }

    /// Charges one walk memory reference at physical address `pa`,
    /// returning its cycle cost and updating residency.
    #[inline]
    pub fn access(&mut self, pa: u64, costs: &CostParams) -> u64 {
        let line = pa >> 6;
        let set = set_hash(line);
        // Fused lookup+fill: no other cache operation can interleave
        // between the residency check and the fill, so the single-scan
        // variant is state-identical to lookup-then-insert.
        if self.lines.touch_or_fill(set, line, ()) {
            costs.cache_hit
        } else {
            costs.dram
        }
    }

    /// Drops all residency state.
    pub fn flush(&mut self) {
        self.lines.flush();
    }

    /// Number of sets the residency model indexes into (for tests).
    #[cfg(test)]
    fn nsets(&self) -> usize {
        self.lines.nsets()
    }

    /// `(lookups, hits)` over the model's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.lines.stats();
        (s.lookups, s.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_becomes_cheap() {
        let costs = CostParams::default();
        let mut pc = PteCache::default_geometry();
        assert_eq!(pc.access(0x4000, &costs), costs.dram);
        assert_eq!(pc.access(0x4000, &costs), costs.cache_hit);
    }

    #[test]
    fn line_granularity_is_64_bytes() {
        let costs = CostParams::default();
        let mut pc = PteCache::default_geometry();
        pc.access(0x4000, &costs);
        assert_eq!(pc.access(0x4038, &costs), costs.cache_hit, "same line");
        assert_eq!(pc.access(0x4040, &costs), costs.dram, "next line");
    }

    #[test]
    fn capacity_evicts_under_streaming() {
        let costs = CostParams::default();
        let mut pc = PteCache::new(64, 4);
        for i in 0..1024u64 {
            pc.access(i * 64, &costs);
        }
        // The first line must have been evicted by the stream.
        assert_eq!(pc.access(0, &costs), costs.dram);
    }

    /// Applies the same reduction [`AssocCache`] applies to a caller
    /// set index: mask for power-of-two set counts, modulo otherwise.
    fn reduce(set: usize, nsets: usize) -> usize {
        if nsets.is_power_of_two() {
            set & (nsets - 1)
        } else {
            set % nsets
        }
    }

    #[test]
    fn set_hash_spreads_structured_strides() {
        // The aliasing audit for the satellite bugfix: walk references
        // arrive in highly structured strides — sequential PTE lines
        // within one page-table page (64 B apart), page-table pages 4 KiB
        // apart (64 lines), and upper-level tables whole regions apart.
        // For every stride and both power-of-two (the default 512) and
        // non-power-of-two set counts, the hashed-and-reduced set index
        // must use every set and stay near-uniform: no set may see more
        // than 2x its fair share.
        let default_sets = PteCache::default_geometry().nsets();
        assert_eq!(default_sets, 512, "default geometry pins 512 sets");
        for nsets in [default_sets, 12, 96] {
            for stride in [1u64, 64, 512, 4096] {
                let n = nsets * 64;
                let mut counts = vec![0u32; nsets];
                for i in 0..n as u64 {
                    counts[reduce(set_hash(i * stride), nsets)] += 1;
                }
                let mean = (n / nsets) as u32;
                let max = *counts.iter().max().unwrap();
                let used = counts.iter().filter(|&&c| c > 0).count();
                assert_eq!(
                    used, nsets,
                    "stride {stride} must reach all {nsets} sets"
                );
                assert!(
                    max <= 2 * mean,
                    "stride {stride} over {nsets} sets: max load {max} > 2x mean {mean}"
                );
            }
        }
    }

    #[test]
    fn flush_clears_residency() {
        let costs = CostParams::default();
        let mut pc = PteCache::default_geometry();
        pc.access(0x4000, &costs);
        pc.flush();
        assert_eq!(pc.access(0x4000, &costs), costs.dram);
    }
}
