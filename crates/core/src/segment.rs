//! Direct-segment registers.
//!
//! A direct segment maps a contiguous range of a source address space to a
//! contiguous range of a destination space with three registers — BASE,
//! LIMIT, OFFSET — replacing page walks with one base-bound check and an
//! addition (Section II.B). The proposed hardware has *two* independent
//! instances:
//!
//! * the **guest segment** (BASE_G/LIMIT_G/OFFSET_G), translating gVA→gPA,
//!   owned by the guest OS and swapped on guest context switches;
//! * the **VMM segment** (BASE_V/LIMIT_V/OFFSET_V), translating gPA→hPA,
//!   owned by the VMM and swapped on VM exit/entry.
//!
//! Setting BASE = LIMIT nullifies a segment (it contains no addresses),
//! which is how the hardware switches between the Dual/VMM/Guest Direct
//! modes (Sections III.B–III.C).

use core::fmt;

use mv_types::{AddrRange, Address};

/// One direct-segment register set (BASE, LIMIT, OFFSET) translating
/// addresses from space `S` to space `D`.
///
/// OFFSET is stored as a wrapping difference so destination bases below
/// source bases work naturally (two's-complement addition, as hardware
/// would).
///
/// # Example
///
/// ```
/// use mv_core::Segment;
/// use mv_types::{AddrRange, Gpa, Gva};
///
/// let seg: Segment<Gva, Gpa> = Segment::map(
///     AddrRange::new(Gva::new(0x1000_0000), Gva::new(0x5000_0000)),
///     Gpa::new(0x2_0000_0000),
/// );
/// assert_eq!(seg.translate(Gva::new(0x1000_0042)), Some(Gpa::new(0x2_0000_0042)));
/// assert_eq!(seg.translate(Gva::new(0xffff)), None);
/// ```
pub struct Segment<S, D> {
    base: u64,
    limit: u64,
    offset: u64, // wrapping: dest = src + offset
    _spaces: core::marker::PhantomData<fn(S) -> D>,
}

impl<S: Address, D: Address> Segment<S, D> {
    /// A nullified segment (BASE = LIMIT = 0): contains nothing.
    pub fn nullified() -> Self {
        Segment {
            base: 0,
            limit: 0,
            offset: 0,
            _spaces: core::marker::PhantomData,
        }
    }

    /// Programs the segment to map the source range `src` onto the
    /// destination range starting at `dst_base`.
    pub fn map(src: AddrRange<S>, dst_base: D) -> Self {
        Segment {
            base: src.start().as_u64(),
            limit: src.end().as_u64(),
            offset: dst_base.as_u64().wrapping_sub(src.start().as_u64()),
            _spaces: core::marker::PhantomData,
        }
    }

    /// Whether the segment is nullified (BASE = LIMIT).
    #[inline]
    pub fn is_nullified(&self) -> bool {
        self.base == self.limit
    }

    /// The BASE register (start of the mapped source range).
    #[inline]
    pub fn base(&self) -> S {
        S::from_u64(self.base)
    }

    /// The LIMIT register (end, exclusive, of the mapped source range).
    #[inline]
    pub fn limit(&self) -> S {
        S::from_u64(self.limit)
    }

    /// The mapped source range.
    pub fn range(&self) -> AddrRange<S> {
        AddrRange::new(S::from_u64(self.base), S::from_u64(self.limit))
    }

    /// The base-bound check: BASE ≤ addr < LIMIT.
    #[inline]
    pub fn contains(&self, addr: S) -> bool {
        let a = addr.as_u64();
        self.base <= a && a < self.limit
    }

    /// Translates `addr` if the base-bound check passes: `addr + OFFSET`.
    #[inline]
    pub fn translate(&self, addr: S) -> Option<D> {
        self.contains(addr)
            .then(|| D::from_u64(addr.as_u64().wrapping_add(self.offset)))
    }

    /// Translates without the bound check (caller already checked).
    #[inline]
    pub fn translate_unchecked(&self, addr: S) -> D {
        debug_assert!(self.contains(addr));
        D::from_u64(addr.as_u64().wrapping_add(self.offset))
    }
}

impl<S, D> Copy for Segment<S, D> {}
impl<S, D> Clone for Segment<S, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S, D> PartialEq for Segment<S, D> {
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base && self.limit == other.limit && self.offset == other.offset
    }
}
impl<S, D> Eq for Segment<S, D> {}

impl<S: Address, D: Address> Default for Segment<S, D> {
    fn default() -> Self {
        Self::nullified()
    }
}

impl<S: Address, D: Address> fmt::Debug for Segment<S, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nullified() {
            write!(f, "Segment<{}→{}>(nullified)", S::SPACE, D::SPACE)
        } else {
            write!(
                f,
                "Segment<{}→{}>[{:#x}..{:#x}) + {:#x}",
                S::SPACE,
                D::SPACE,
                self.base,
                self.limit,
                self.offset
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::{Gpa, Gva, Hpa};

    fn seg(base: u64, limit: u64, dst: u64) -> Segment<Gva, Gpa> {
        Segment::map(AddrRange::new(Gva::new(base), Gva::new(limit)), Gpa::new(dst))
    }

    #[test]
    fn translation_is_addition_within_bounds() {
        let s = seg(0x1000, 0x9000, 0x10_0000);
        assert_eq!(s.translate(Gva::new(0x1000)), Some(Gpa::new(0x10_0000)));
        assert_eq!(s.translate(Gva::new(0x8fff)), Some(Gpa::new(0x10_7fff)));
        assert_eq!(s.translate(Gva::new(0x9000)), None, "limit is exclusive");
        assert_eq!(s.translate(Gva::new(0xfff)), None, "below base");
    }

    #[test]
    fn downward_offset_works() {
        // Destination below source: offset wraps.
        let s = seg(0x8000_0000, 0x9000_0000, 0x1000);
        assert_eq!(s.translate(Gva::new(0x8000_0042)), Some(Gpa::new(0x1042)));
    }

    #[test]
    fn nullified_contains_nothing() {
        let s: Segment<Gpa, Hpa> = Segment::nullified();
        assert!(s.is_nullified());
        assert!(!s.contains(Gpa::new(0)));
        assert_eq!(s.translate(Gpa::new(0x1234)), None);
        assert_eq!(s, Segment::default());
    }

    #[test]
    fn base_equal_limit_nullifies_any_segment() {
        let s = seg(0x5000, 0x5000, 0x9000);
        assert!(s.is_nullified());
        assert!(!s.contains(Gva::new(0x5000)));
    }

    #[test]
    fn accessors_expose_registers() {
        let s = seg(0x1000, 0x2000, 0xa000);
        assert_eq!(s.base(), Gva::new(0x1000));
        assert_eq!(s.limit(), Gva::new(0x2000));
        assert_eq!(s.range().len(), 0x1000);
    }

    #[test]
    fn debug_shows_nullified_state() {
        let s: Segment<Gva, Gpa> = Segment::nullified();
        assert!(format!("{s:?}").contains("nullified"));
        let s = seg(0x1000, 0x2000, 0x3000);
        assert!(format!("{s:?}").contains("gVA→gPA"));
    }
}
