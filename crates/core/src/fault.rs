//! Translation faults surfaced to the guest OS / VMM.

use core::fmt;

use mv_types::{Gpa, Gva};

/// A fault raised during address translation. The owning layer (guest OS
/// for guest faults, VMM for nested faults) services the fault — e.g. by
/// demand-mapping the page — and the access is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslationFault {
    /// The first dimension (gVA→gPA, or VA→PA natively) has no mapping.
    GuestNotMapped {
        /// Faulting guest virtual address.
        gva: Gva,
    },
    /// The second dimension (gPA→hPA) has no mapping; `gpa` is the guest
    /// physical address that missed, which may be a page-table pointer of
    /// the first dimension.
    NestedNotMapped {
        /// Faulting guest virtual address (the original access).
        gva: Gva,
        /// Guest physical address with no nested mapping.
        gpa: Gpa,
    },
    /// A write hit a read-only mapping (copy-on-write break, write
    /// tracking).
    WriteProtected {
        /// Faulting guest virtual address.
        gva: Gva,
    },
    /// The middle dimension (L1-hypervisor table on 3-level walks) has no
    /// mapping for `gpa` — an L1-guest physical address, which may be a
    /// page-table pointer of the first dimension.
    MidNotMapped {
        /// Faulting guest virtual address (the original access).
        gva: Gva,
        /// L1-guest physical address with no mid mapping.
        gpa: Gpa,
    },
}

impl fmt::Display for TranslationFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationFault::GuestNotMapped { gva } => {
                write!(f, "guest page fault at {gva}")
            }
            TranslationFault::NestedNotMapped { gva, gpa } => {
                write!(f, "nested page fault at {gpa} (gVA {gva})")
            }
            TranslationFault::WriteProtected { gva } => {
                write!(f, "write-protection fault at {gva}")
            }
            TranslationFault::MidNotMapped { gva, gpa } => {
                write!(f, "mid page fault at {gpa} (gVA {gva})")
            }
        }
    }
}

impl std::error::Error for TranslationFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_addresses() {
        let f = TranslationFault::GuestNotMapped { gva: Gva::new(0x1000) };
        assert_eq!(f.to_string(), "guest page fault at 0x1000");
        let f = TranslationFault::NestedNotMapped {
            gva: Gva::new(0x1000),
            gpa: Gpa::new(0x2000),
        };
        assert!(f.to_string().contains("0x2000"));
    }
}
