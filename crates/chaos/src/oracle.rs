//! The translation oracle: an independent cross-check of every completed
//! translation.

use core::fmt;

/// One observed divergence between the MMU's answer and the reference
/// translation — typed, so injected faults can never silently corrupt a
/// results table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleViolation {
    /// Access index at which the divergence was observed.
    pub access: u64,
    /// The virtual address that was translated.
    pub va: u64,
    /// The independently derived host-physical answer (`None` when the
    /// reference has no mapping at all — the MMU produced an address for a
    /// page that should not translate).
    pub expected: Option<u64>,
    /// What the MMU actually produced.
    pub actual: u64,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.expected {
            Some(e) => write!(
                f,
                "access {}: va {:#x} translated to {:#x}, reference says {:#x}",
                self.access, self.va, self.actual, e
            ),
            None => write!(
                f,
                "access {}: va {:#x} translated to {:#x}, reference has no mapping",
                self.access, self.va, self.actual
            ),
        }
    }
}

impl std::error::Error for OracleViolation {}

/// Cap on retained violation details; the count keeps incrementing past it.
const MAX_RECORDED: usize = 32;

/// Cross-checks completed translations against ground truth.
///
/// The oracle itself is mechanism-free: the driver derives the reference
/// answer from the authoritative software structures (guest/nested page
/// tables and programmed segments) and feeds both answers here. The oracle
/// counts checks, records divergences (detail capped, count exact), and
/// never stops the run — graceful degradation means finishing with the
/// violations on record, not aborting.
#[derive(Debug, Default)]
pub struct TranslationOracle {
    checks: u64,
    violation_count: u64,
    violations: Vec<OracleViolation>,
}

impl TranslationOracle {
    /// A fresh oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks one completed translation. Returns `true` when it matches.
    pub fn check(&mut self, access: u64, va: u64, expected: Option<u64>, actual: u64) -> bool {
        self.checks += 1;
        if expected == Some(actual) {
            return true;
        }
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(OracleViolation {
                access,
                va,
                expected,
                actual,
            });
        }
        false
    }

    /// Total translations checked.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Total divergences observed (exact, even beyond the detail cap).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// Retained violation details (the first few dozen at most; see the
    /// exact count in [`TranslationOracle::violation_count`]).
    pub fn violations(&self) -> &[OracleViolation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_translations_pass() {
        let mut o = TranslationOracle::new();
        assert!(o.check(0, 0x1000, Some(0xa000), 0xa000));
        assert_eq!(o.checks(), 1);
        assert_eq!(o.violation_count(), 0);
        assert!(o.violations().is_empty());
    }

    #[test]
    fn divergence_is_typed_and_counted() {
        let mut o = TranslationOracle::new();
        assert!(!o.check(5, 0x2000, Some(0xb000), 0xc000));
        assert!(!o.check(6, 0x3000, None, 0xd000));
        assert_eq!(o.violation_count(), 2);
        let v = o.violations()[0];
        assert_eq!(v.access, 5);
        assert!(v.to_string().contains("reference says 0xb000"));
        assert!(o.violations()[1].to_string().contains("no mapping"));
    }

    #[test]
    fn detail_is_capped_but_count_is_exact() {
        let mut o = TranslationOracle::new();
        for i in 0..100 {
            o.check(i, 0x1000, Some(1), 2);
        }
        assert_eq!(o.violation_count(), 100);
        assert_eq!(o.violations().len(), MAX_RECORDED);
    }
}
