//! Deterministic fault scheduling.

use mv_types::rng::split_seed;

/// Salt mixed into the per-event draw stream so the *kind* of a fault and
/// the *parameters* of that fault come from independent streams.
const DRAW_SALT: u64 = 0xfa57_5a17_0dd5_ee0d;

/// Configuration of a chaos run: which seed drives the fault stream and
/// how often faults fire.
///
/// A rate of zero disables injection entirely — the driver takes the exact
/// same path as a chaos-free run, which is what keeps the golden fixtures
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Seed for the fault stream (independent of the workload seed).
    pub seed: u64,
    /// Injected faults per million accesses (0 = off).
    pub fault_rate_per_million: u64,
    /// First access of the fault storm. Only meaningful when
    /// [`ChaosSpec::storm_len`] is nonzero.
    pub storm_start: u64,
    /// Length of the fault storm in accesses. Zero (the default) means the
    /// plan fires for the whole run — the pre-storm behavior, so existing
    /// specs are unchanged.
    pub storm_len: u64,
}

impl ChaosSpec {
    /// A spec injecting `fault_rate_per_million` faults from `seed` over
    /// the whole run.
    pub fn new(seed: u64, fault_rate_per_million: u64) -> Self {
        ChaosSpec {
            seed,
            fault_rate_per_million,
            storm_start: 0,
            storm_len: 0,
        }
    }

    /// Confines injection to the `[start, start + len)` access window — a
    /// fault *storm* with clean phases on either side, the adversary shape
    /// adaptive-controller studies score recovery time against.
    pub fn with_storm(mut self, start: u64, len: u64) -> Self {
        self.storm_start = start;
        self.storm_len = len;
        self
    }

    /// Whether this spec injects anything at all.
    pub fn active(&self) -> bool {
        self.fault_rate_per_million > 0
    }

    /// Whether access `i` falls inside the injection window (always true
    /// without a storm window).
    pub fn storming(&self, i: u64) -> bool {
        self.storm_len == 0
            || (i >= self.storm_start && i - self.storm_start < self.storm_len)
    }
}

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Permanent loss of physical frames (a DIMM going bad).
    FrameLoss,
    /// A fragmentation storm: other tenants carve scattered free frames.
    FragStorm,
    /// A segment-allocation failure: contiguity for the direct segment is
    /// (reported) lost, forcing the degradation state machine down a level.
    SegmentAllocFail,
    /// A self-balloon request is denied or delayed, stalling recovery.
    BalloonDenial,
    /// A spurious VM exit (interrupt storm, host preemption).
    SpuriousVmExit,
}

impl ChaosFault {
    /// Every kind, in injection-index order.
    pub const ALL: [ChaosFault; 5] = [
        ChaosFault::FrameLoss,
        ChaosFault::FragStorm,
        ChaosFault::SegmentAllocFail,
        ChaosFault::BalloonDenial,
        ChaosFault::SpuriousVmExit,
    ];

    /// Stable index into per-kind count arrays.
    pub fn index(self) -> usize {
        match self {
            ChaosFault::FrameLoss => 0,
            ChaosFault::FragStorm => 1,
            ChaosFault::SegmentAllocFail => 2,
            ChaosFault::BalloonDenial => 3,
            ChaosFault::SpuriousVmExit => 4,
        }
    }

    /// Short human-readable label (used in reports and exports).
    pub fn label(self) -> &'static str {
        match self {
            ChaosFault::FrameLoss => "frame_loss",
            ChaosFault::FragStorm => "frag_storm",
            ChaosFault::SegmentAllocFail => "segment_alloc_fail",
            ChaosFault::BalloonDenial => "balloon_denial",
            ChaosFault::SpuriousVmExit => "spurious_vm_exit",
        }
    }
}

/// Schedules injected faults deterministically over the access stream.
///
/// Mirrors the churn plan's contract: whether access `i` carries a fault —
/// and which kind — is a pure function of `(spec.seed, i)`, independent of
/// anything that happened on earlier accesses. That keeps chaos runs
/// byte-identical across worker counts and lets a run be replayed from its
/// seed alone.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    spec: ChaosSpec,
    /// Inject every `interval` accesses; 0 = never.
    interval: u64,
}

impl FaultPlan {
    /// Builds the plan for a spec.
    pub fn new(spec: ChaosSpec) -> Self {
        let interval = 1_000_000u64
            .checked_div(spec.fault_rate_per_million)
            .map_or(0, |i| i.max(1));
        FaultPlan { spec, interval }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> ChaosSpec {
        self.spec
    }

    /// The fault (if any) scheduled at access `i`. Access zero never
    /// faults, so the first access of a run is always clean.
    pub fn due(&self, i: u64) -> Option<ChaosFault> {
        if self.interval == 0 || i == 0 || i % self.interval != 0 || !self.spec.storming(i) {
            return None;
        }
        let kind = split_seed(self.spec.seed, i) % ChaosFault::ALL.len() as u64;
        Some(ChaosFault::ALL[kind as usize])
    }

    /// A deterministic parameter word for the fault at access `i` (how many
    /// frames to lose, how hard to fragment, …), drawn from a stream
    /// independent of the kind selection.
    pub fn draw(&self, i: u64) -> u64 {
        split_seed(self.spec.seed ^ DRAW_SALT, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_never_fires() {
        let plan = FaultPlan::new(ChaosSpec::new(7, 0));
        assert!((0..10_000).all(|i| plan.due(i).is_none()));
    }

    #[test]
    fn access_zero_is_always_clean() {
        let plan = FaultPlan::new(ChaosSpec::new(7, 1_000_000));
        assert!(plan.due(0).is_none());
        assert!(plan.due(1).is_some(), "rate 1e6/M fires every access");
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_index() {
        let a = FaultPlan::new(ChaosSpec::new(42, 10_000));
        let b = FaultPlan::new(ChaosSpec::new(42, 10_000));
        for i in 0..5_000 {
            assert_eq!(a.due(i), b.due(i));
            assert_eq!(a.draw(i), b.draw(i));
        }
        let c = FaultPlan::new(ChaosSpec::new(43, 10_000));
        assert!(
            (0..100_000).any(|i| a.due(i) != c.due(i)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn interval_matches_rate() {
        // 10_000 per million = every 100 accesses.
        let plan = FaultPlan::new(ChaosSpec::new(1, 10_000));
        for i in 1..1_000u64 {
            assert_eq!(plan.due(i).is_some(), i % 100 == 0, "at access {i}");
        }
    }

    #[test]
    fn storm_window_gates_injection() {
        let always = FaultPlan::new(ChaosSpec::new(1, 10_000));
        let storm = FaultPlan::new(ChaosSpec::new(1, 10_000).with_storm(500, 300));
        for i in 0..2_000u64 {
            let expected = if (500..800).contains(&i) { always.due(i) } else { None };
            assert_eq!(storm.due(i), expected, "at access {i}");
        }
        // Inside the window the schedule is identical to the unwindowed
        // plan — same seeds, same kinds, same draws.
        assert_eq!(storm.draw(600), always.draw(600));
    }

    #[test]
    fn all_kinds_eventually_fire() {
        let plan = FaultPlan::new(ChaosSpec::new(3, 1_000_000));
        let mut seen = [false; 5];
        for i in 1..1_000 {
            if let Some(k) = plan.due(i) {
                seen[k.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "kinds seen: {seen:?}");
    }
}
