//! Deterministic chaos layer for the memory-virtualization simulator.
//!
//! Real direct-segment systems live or die on their failure story:
//! contiguous allocation fails under fragmentation, balloon requests stall,
//! DIMMs lose frames, and hypervisors take exits they did not ask for. This
//! crate supplies the three pieces the simulator needs to exercise those
//! paths without giving up reproducibility:
//!
//! * a [`FaultPlan`] that schedules injected faults as a pure function of
//!   `(seed, access index)` — the same contract [`ChurnPlan`] follows, so a
//!   chaos run is byte-identical at any worker count;
//! * a [`TranslationOracle`] that cross-checks every completed translation
//!   against an independently derived reference, turning silent corruption
//!   into a typed [`OracleViolation`];
//! * a [`ChaosReport`] aggregating injections, degradation residency, and
//!   oracle outcomes, with a deterministic [`ChaosReport::merge`] for the
//!   parallel grid runner.
//!
//! The degradation *mechanics* (what it means to fall from Direct mode to
//! escape-heavy Direct to full paging) belong to the machine layer in
//! `mv-sim`; this crate only provides the shared vocabulary
//! ([`DegradeLevel`], [`Transition`]) and the scheduling/accounting around
//! it.
//!
//! [`ChurnPlan`]: https://docs.rs/mv-sim

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod oracle;
mod plan;
mod report;

pub use oracle::{OracleViolation, TranslationOracle};
pub use plan::{ChaosFault, ChaosSpec, FaultPlan};
pub use report::{ChaosReport, DegradeLevel, Transition};
