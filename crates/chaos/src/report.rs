//! Degradation vocabulary and the per-run chaos report.

use core::fmt;

use crate::plan::ChaosFault;

/// The degradation levels of a direct-segment environment.
///
/// The machine layer owns the mechanics of each level; this enum is the
/// shared vocabulary between the driver, the report, and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// Full direct-segment operation.
    #[default]
    Direct,
    /// Direct with a populated escape filter: segment still programmed, but
    /// a meaningful fraction of pages escape to the walk path.
    EscapeHeavy,
    /// Segment disabled; every translation pages.
    Paging,
}

impl DegradeLevel {
    /// Every level, best to worst.
    pub const ALL: [DegradeLevel; 3] = [
        DegradeLevel::Direct,
        DegradeLevel::EscapeHeavy,
        DegradeLevel::Paging,
    ];

    /// Stable index into residency arrays.
    pub fn index(self) -> usize {
        match self {
            DegradeLevel::Direct => 0,
            DegradeLevel::EscapeHeavy => 1,
            DegradeLevel::Paging => 2,
        }
    }

    /// Short label used in reports and telemetry exports.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::Direct => "direct",
            DegradeLevel::EscapeHeavy => "escape_heavy",
            DegradeLevel::Paging => "paging",
        }
    }
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One degradation-state transition, recorded at the access where it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Access index at which the transition happened.
    pub access: u64,
    /// Level before.
    pub from: DegradeLevel,
    /// Level after.
    pub to: DegradeLevel,
    /// What caused it (fault label or `"recovery"`).
    pub cause: &'static str,
}

/// Aggregated chaos outcome of one run (or a deterministic merge of several
/// trials).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Faults injected, indexed by [`ChaosFault::index`].
    pub injected: [u64; 5],
    /// Balloon/compaction attempts denied by an injected stall.
    pub denials: u64,
    /// Successful recoveries back to Direct.
    pub recoveries: u64,
    /// Recovery attempts that failed (denied or still fragmented) and
    /// re-armed the exponential backoff.
    pub failed_recoveries: u64,
    /// Total degradation-state transitions.
    pub transitions: u64,
    /// Accesses spent at each level, indexed by [`DegradeLevel::index`].
    pub residency: [u64; 3],
    /// Translations cross-checked by the oracle.
    pub oracle_checks: u64,
    /// Oracle divergences (zero on a healthy run).
    pub oracle_violations: u64,
    /// Level the run ended at. A merge keeps the *worst* final level across
    /// trials — the pessimistic answer to "did every trial recover?"
    pub final_level: DegradeLevel,
}

impl ChaosReport {
    /// Faults injected of one kind.
    pub fn injected_of(&self, kind: ChaosFault) -> u64 {
        self.injected[kind.index()]
    }

    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Fraction of accesses spent outside full Direct operation (0 when
    /// the run recorded no residency, e.g. a paging-only environment).
    pub fn degraded_fraction(&self) -> f64 {
        let total: u64 = self.residency.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (total - self.residency[DegradeLevel::Direct.index()]) as f64 / total as f64
    }

    /// Whether the run survived: it completed with a clean oracle. (A run
    /// that aborts never produces a report at all, so any report in hand
    /// already implies completion.)
    pub fn survived(&self) -> bool {
        self.oracle_violations == 0
    }

    /// Folds another report in (summing every counter). The grid runner
    /// folds trial reports in cell order, so the merge is deterministic.
    pub fn merge(&mut self, other: &ChaosReport) {
        for (a, b) in self.injected.iter_mut().zip(other.injected) {
            *a += b;
        }
        self.denials += other.denials;
        self.recoveries += other.recoveries;
        self.failed_recoveries += other.failed_recoveries;
        self.transitions += other.transitions;
        for (a, b) in self.residency.iter_mut().zip(other.residency) {
            *a += b;
        }
        self.oracle_checks += other.oracle_checks;
        self.oracle_violations += other.oracle_violations;
        self.final_level = self.final_level.max(other.final_level);
    }

    /// Renders the chaos counters in the Prometheus text exposition format,
    /// matching the `Telemetry::prometheus` conventions (`# HELP`/`# TYPE`
    /// comments, `labels` attached to every sample). Emitted metrics:
    /// `mv_degrade_level` (final level as its [`DegradeLevel::index`]),
    /// `mv_oracle_checks_total` / `mv_oracle_violations_total`, one
    /// `mv_chaos_injected_total{kind=...}` series per [`ChaosFault`], the
    /// recovery counters, and per-level `mv_chaos_residency_accesses`.
    pub fn prometheus(&self, labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        let with = |extra: &[(&str, &str)]| -> String {
            let parts: Vec<String> = labels
                .iter()
                .chain(extra.iter())
                .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
                .collect();
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        let mut metric = |name: &str, kind: &str, help: &str, samples: &[(&[(&str, &str)], u64)]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for (extra, value) in samples {
                out.push_str(&format!("{name}{} {value}\n", with(extra)));
            }
        };
        metric(
            "mv_degrade_level",
            "gauge",
            "Final degradation level (0=direct, 1=escape_heavy, 2=paging); \
             merged grids report the worst trial.",
            &[(
                &[("level", self.final_level.label())],
                self.final_level.index() as u64,
            )],
        );
        metric(
            "mv_oracle_checks_total",
            "counter",
            "Translations cross-checked against the reference oracle.",
            &[(&[], self.oracle_checks)],
        );
        metric(
            "mv_oracle_violations_total",
            "counter",
            "Oracle divergences; nonzero means translation corruption.",
            &[(&[], self.oracle_violations)],
        );
        let injected: Vec<([(&str, &str); 1], u64)> = ChaosFault::ALL
            .iter()
            .map(|k| ([("kind", k.label())], self.injected_of(*k)))
            .collect();
        let injected_refs: Vec<(&[(&str, &str)], u64)> = injected
            .iter()
            .map(|(l, v)| (l.as_slice(), *v))
            .collect();
        metric(
            "mv_chaos_injected_total",
            "counter",
            "Faults injected, by kind.",
            &injected_refs,
        );
        metric(
            "mv_chaos_denials_total",
            "counter",
            "Recovery attempts stalled by an injected balloon denial.",
            &[(&[], self.denials)],
        );
        metric(
            "mv_chaos_recoveries_total",
            "counter",
            "Successful recoveries back to direct operation.",
            &[(&[], self.recoveries)],
        );
        metric(
            "mv_chaos_failed_recoveries_total",
            "counter",
            "Recovery attempts that failed and re-armed the backoff.",
            &[(&[], self.failed_recoveries)],
        );
        metric(
            "mv_chaos_transitions_total",
            "counter",
            "Degradation-state transitions.",
            &[(&[], self.transitions)],
        );
        let residency: Vec<([(&str, &str); 1], u64)> = DegradeLevel::ALL
            .iter()
            .map(|l| ([("level", l.label())], self.residency[l.index()]))
            .collect();
        let residency_refs: Vec<(&[(&str, &str)], u64)> = residency
            .iter()
            .map(|(l, v)| (l.as_slice(), *v))
            .collect();
        metric(
            "mv_chaos_residency_accesses",
            "counter",
            "Accesses spent at each degradation level.",
            &residency_refs,
        );
        out
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = ChaosReport {
            injected: [1, 2, 3, 4, 5],
            denials: 1,
            recoveries: 2,
            failed_recoveries: 3,
            transitions: 4,
            residency: [10, 20, 30],
            oracle_checks: 100,
            oracle_violations: 0,
            final_level: DegradeLevel::Direct,
        };
        let mut b = a;
        b.final_level = DegradeLevel::EscapeHeavy;
        a.merge(&b);
        assert_eq!(a.injected, [2, 4, 6, 8, 10]);
        assert_eq!(a.residency, [20, 40, 60]);
        assert_eq!(a.oracle_checks, 200);
        assert_eq!(a.injected_total(), 30);
        assert_eq!(
            a.final_level,
            DegradeLevel::EscapeHeavy,
            "merge keeps the worst final level"
        );
        assert!(a.survived());
    }

    #[test]
    fn prometheus_exposes_degradation_and_fault_kinds() {
        let r = ChaosReport {
            injected: [1, 0, 2, 0, 3],
            denials: 4,
            recoveries: 5,
            failed_recoveries: 6,
            transitions: 7,
            residency: [80, 15, 5],
            oracle_checks: 100,
            oracle_violations: 1,
            final_level: DegradeLevel::Paging,
        };
        let text = r.prometheus(&[("workload", "gups")]);
        assert!(text.contains("# TYPE mv_degrade_level gauge\n"));
        assert!(text.contains("mv_degrade_level{workload=\"gups\",level=\"paging\"} 2\n"));
        assert!(text.contains("mv_oracle_violations_total{workload=\"gups\"} 1\n"));
        assert!(text.contains("mv_oracle_checks_total{workload=\"gups\"} 100\n"));
        assert!(
            text.contains("mv_chaos_injected_total{workload=\"gups\",kind=\"frame_loss\"} 1\n")
        );
        assert!(text.contains(
            "mv_chaos_injected_total{workload=\"gups\",kind=\"spurious_vm_exit\"} 3\n"
        ));
        assert!(text.contains(
            "mv_chaos_residency_accesses{workload=\"gups\",level=\"escape_heavy\"} 15\n"
        ));
        assert!(text.contains("mv_chaos_recoveries_total{workload=\"gups\"} 5\n"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("mv_"),
                "stray line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_without_labels_has_no_brace_clutter() {
        let text = ChaosReport::default().prometheus(&[]);
        assert!(text.contains("mv_oracle_checks_total 0\n"));
        assert!(text.contains("mv_degrade_level{level=\"direct\"} 0\n"));
    }

    #[test]
    fn degraded_fraction_ignores_empty_runs() {
        assert_eq!(ChaosReport::default().degraded_fraction(), 0.0);
        let r = ChaosReport {
            residency: [75, 15, 10],
            ..Default::default()
        };
        assert!((r.degraded_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn level_labels_are_stable() {
        assert_eq!(DegradeLevel::Direct.to_string(), "direct");
        assert_eq!(DegradeLevel::EscapeHeavy.label(), "escape_heavy");
        assert_eq!(DegradeLevel::Paging.index(), 2);
    }
}
