//! Degradation vocabulary and the per-run chaos report.

use core::fmt;

use crate::plan::ChaosFault;

/// The degradation levels of a direct-segment environment.
///
/// The machine layer owns the mechanics of each level; this enum is the
/// shared vocabulary between the driver, the report, and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Full direct-segment operation.
    Direct,
    /// Direct with a populated escape filter: segment still programmed, but
    /// a meaningful fraction of pages escape to the walk path.
    EscapeHeavy,
    /// Segment disabled; every translation pages.
    Paging,
}

impl DegradeLevel {
    /// Every level, best to worst.
    pub const ALL: [DegradeLevel; 3] = [
        DegradeLevel::Direct,
        DegradeLevel::EscapeHeavy,
        DegradeLevel::Paging,
    ];

    /// Stable index into residency arrays.
    pub fn index(self) -> usize {
        match self {
            DegradeLevel::Direct => 0,
            DegradeLevel::EscapeHeavy => 1,
            DegradeLevel::Paging => 2,
        }
    }

    /// Short label used in reports and telemetry exports.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::Direct => "direct",
            DegradeLevel::EscapeHeavy => "escape_heavy",
            DegradeLevel::Paging => "paging",
        }
    }
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One degradation-state transition, recorded at the access where it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Access index at which the transition happened.
    pub access: u64,
    /// Level before.
    pub from: DegradeLevel,
    /// Level after.
    pub to: DegradeLevel,
    /// What caused it (fault label or `"recovery"`).
    pub cause: &'static str,
}

/// Aggregated chaos outcome of one run (or a deterministic merge of several
/// trials).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Faults injected, indexed by [`ChaosFault::index`].
    pub injected: [u64; 5],
    /// Balloon/compaction attempts denied by an injected stall.
    pub denials: u64,
    /// Successful recoveries back to Direct.
    pub recoveries: u64,
    /// Recovery attempts that failed (denied or still fragmented) and
    /// re-armed the exponential backoff.
    pub failed_recoveries: u64,
    /// Total degradation-state transitions.
    pub transitions: u64,
    /// Accesses spent at each level, indexed by [`DegradeLevel::index`].
    pub residency: [u64; 3],
    /// Translations cross-checked by the oracle.
    pub oracle_checks: u64,
    /// Oracle divergences (zero on a healthy run).
    pub oracle_violations: u64,
}

impl ChaosReport {
    /// Faults injected of one kind.
    pub fn injected_of(&self, kind: ChaosFault) -> u64 {
        self.injected[kind.index()]
    }

    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Fraction of accesses spent outside full Direct operation (0 when
    /// the run recorded no residency, e.g. a paging-only environment).
    pub fn degraded_fraction(&self) -> f64 {
        let total: u64 = self.residency.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (total - self.residency[DegradeLevel::Direct.index()]) as f64 / total as f64
    }

    /// Whether the run survived: it completed with a clean oracle. (A run
    /// that aborts never produces a report at all, so any report in hand
    /// already implies completion.)
    pub fn survived(&self) -> bool {
        self.oracle_violations == 0
    }

    /// Folds another report in (summing every counter). The grid runner
    /// folds trial reports in cell order, so the merge is deterministic.
    pub fn merge(&mut self, other: &ChaosReport) {
        for (a, b) in self.injected.iter_mut().zip(other.injected) {
            *a += b;
        }
        self.denials += other.denials;
        self.recoveries += other.recoveries;
        self.failed_recoveries += other.failed_recoveries;
        self.transitions += other.transitions;
        for (a, b) in self.residency.iter_mut().zip(other.residency) {
            *a += b;
        }
        self.oracle_checks += other.oracle_checks;
        self.oracle_violations += other.oracle_violations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = ChaosReport {
            injected: [1, 2, 3, 4, 5],
            denials: 1,
            recoveries: 2,
            failed_recoveries: 3,
            transitions: 4,
            residency: [10, 20, 30],
            oracle_checks: 100,
            oracle_violations: 0,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.injected, [2, 4, 6, 8, 10]);
        assert_eq!(a.residency, [20, 40, 60]);
        assert_eq!(a.oracle_checks, 200);
        assert_eq!(a.injected_total(), 30);
        assert!(a.survived());
    }

    #[test]
    fn degraded_fraction_ignores_empty_runs() {
        assert_eq!(ChaosReport::default().degraded_fraction(), 0.0);
        let r = ChaosReport {
            residency: [75, 15, 10],
            ..Default::default()
        };
        assert!((r.degraded_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn level_labels_are_stable() {
        assert_eq!(DegradeLevel::Direct.to_string(), "direct");
        assert_eq!(DegradeLevel::EscapeHeavy.label(), "escape_heavy");
        assert_eq!(DegradeLevel::Paging.index(), 2);
    }
}
