//! Online adaptive mode controller for the memory-virtualization simulator.
//!
//! The paper treats translation mode (direct segments vs. 4K/2M paging,
//! per layer of the stack) as a build-time choice. This crate makes it a
//! *runtime policy*: a [`ModeController`] watches mv-obs
//! [`EpochSnapshot`]s and mv-chaos fault signals and decides, per layer of
//! the translation stack, whether each dimension should run fully direct,
//! escape-heavy direct (segment guarded by a populated escape filter), or
//! fall back to paging — switching live between epochs.
//!
//! The controller is built to survive an adversary. Chaos fault storms
//! produce exactly the noisy, bursty signal that makes naive controllers
//! thrash, so every decision passes through **hysteresis**:
//!
//! * **asymmetric thresholds** — demotions (forced by a failed segment
//!   allocation) apply immediately, mid-epoch; promotions only happen at
//!   epoch boundaries, and only after the signal has been quiet;
//! * **dwell-time minimums** — a freshly switched plan must age
//!   [`ControllerConfig::min_dwell_epochs`] before the next promotion;
//! * **quiet-run gating** — [`ControllerConfig::quiet_epochs`] consecutive
//!   fault-free, low-escape epochs are required before stepping up;
//! * **exponential backoff** — a promotion that fails mid-flight (balloon
//!   denial while re-establishing the segment) is rolled back and the next
//!   attempt is pushed out by a doubling epoch count, capped at
//!   [`ControllerConfig::backoff_cap_epochs`];
//! * **a transition budget** — at most
//!   [`ControllerConfig::max_promotions_per_window`] promotion attempts per
//!   [`ControllerConfig::window_epochs`], bounding transitions per window
//!   no matter how pathological the signal.
//!
//! Decisions are pure functions of the observed epoch sequence: feeding
//! the same snapshots and signals in the same order reproduces the same
//! transition log bit for bit, which is what keeps adaptive grid runs
//! byte-identical at any `--jobs` count.
//!
//! The *mechanics* of a switch (which MMU segment registers and escape
//! filters to program, and the single batched flush) live in the machine
//! layer in `mv-sim`; this crate owns the policy and the shared
//! vocabulary ([`ModePlan`], [`PlanTransition`], [`AdaptReport`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod controller;
mod plan;

pub use controller::{
    AdaptReport, AdaptSpec, ControllerConfig, EpochSignals, ModeController, PlanTransition,
};
pub use mv_chaos::DegradeLevel;
pub use mv_obs::EpochSnapshot;
pub use plan::ModePlan;
