//! The hysteresis-gated mode controller and its accounting.

use crate::plan::{ModePlan, MAX_LAYERS};
use mv_chaos::DegradeLevel;
use mv_obs::{EpochSnapshot, TransitionRecord};

/// Tuning knobs for the [`ModeController`]'s hysteresis.
///
/// The defaults are deliberately conservative: with 10k-access epochs they
/// let a healthy run re-promote within a handful of epochs while keeping a
/// fault storm from inducing more than a few transitions per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Epochs a freshly applied plan must age before the controller will
    /// consider promoting again (dwell-time minimum).
    pub min_dwell_epochs: u64,
    /// Consecutive quiet epochs (no injected faults, escape rate under
    /// [`ControllerConfig::promote_escape_per_kilo`]) required before a
    /// promotion.
    pub quiet_epochs: u64,
    /// An epoch only counts as quiet if it saw at most this many
    /// escape-filter escapes per thousand accesses.
    pub promote_escape_per_kilo: u64,
    /// Backoff armed after the first failed (rolled-back) promotion, in
    /// epochs.
    pub backoff_base_epochs: u64,
    /// Ceiling for the doubling backoff, in epochs.
    pub backoff_cap_epochs: u64,
    /// Length of the sliding transition-budget window, in epochs.
    pub window_epochs: u64,
    /// At most this many promotion *attempts* (committed or rolled back)
    /// per window — the hard anti-thrash bound.
    pub max_promotions_per_window: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            min_dwell_epochs: 2,
            quiet_epochs: 2,
            promote_escape_per_kilo: 50,
            backoff_base_epochs: 2,
            backoff_cap_epochs: 64,
            window_epochs: 16,
            max_promotions_per_window: 4,
        }
    }
}

/// Everything an adaptive run needs to build its controller: the decision
/// epoch length (in window accesses), a seed for switch-time draws, and
/// the hysteresis tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptSpec {
    /// Decision epoch length in measured accesses. Must match the
    /// telemetry epoch length when telemetry is attached (the driver keeps
    /// them in lockstep).
    pub epoch_len: u64,
    /// Seed for the deterministic per-switch draws (escape-page placement
    /// during probation).
    pub seed: u64,
    /// Hysteresis tuning.
    pub config: ControllerConfig,
}

impl AdaptSpec {
    /// A spec with the default epoch length (10k accesses, matching
    /// mv-obs' default telemetry epoch) and default hysteresis.
    pub fn new(seed: u64) -> Self {
        AdaptSpec {
            epoch_len: 10_000,
            seed,
            config: ControllerConfig::default(),
        }
    }
}

/// Per-epoch fault-side signals the chaos layer feeds the controller,
/// complementing the walk-side [`EpochSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochSignals {
    /// Injected faults of any kind observed during the epoch.
    pub faults: u64,
    /// Segment-allocation failures (forced demotions) during the epoch.
    pub segment_losses: u64,
    /// Balloon denials consumed during the epoch.
    pub denials: u64,
}

/// One committed (or rolled-back) plan change, with full per-layer plans
/// on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTransition {
    /// Access index (within the whole run) at which the switch applied.
    pub access: u64,
    /// Plan in force before the switch.
    pub from: ModePlan,
    /// Plan in force after the switch.
    pub to: ModePlan,
    /// Why: `"segment_alloc_fail"`, `"promotion"`, or `"rollback"`.
    pub cause: &'static str,
}

impl PlanTransition {
    /// Converts to the mv-obs JSONL transition record, labelling each side
    /// with its per-layer plan (e.g. `"escape_heavy/direct"`).
    pub fn record(&self) -> TransitionRecord {
        TransitionRecord {
            access: self.access,
            from: self.from.label(),
            to: self.to.label(),
            cause: self.cause.into(),
        }
    }
}

/// Aggregated controller outcome for one run, mergeable across grid cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptReport {
    /// Decision epochs observed.
    pub epochs: u64,
    /// Promotion attempts the hysteresis let through.
    pub decisions: u64,
    /// Promotions that committed.
    pub promotions: u64,
    /// Demotions forced by segment-allocation failures.
    pub forced_demotions: u64,
    /// Promotions that failed mid-flight and were rolled back.
    pub rollbacks: u64,
    /// Transition records emitted (rollbacks emit two).
    pub transitions: u64,
    /// Largest backoff the controller ever armed, in epochs.
    pub max_backoff_epochs: u64,
    /// Ladder level in force when the run ended (worst across merged
    /// cells).
    pub final_level: DegradeLevel,
}

impl AdaptReport {
    /// Deterministically folds another report in (sums counters, keeps the
    /// worst final level and largest backoff). Commutative and
    /// associative, like every other grid-merged report.
    pub fn merge(&mut self, other: &AdaptReport) {
        self.epochs += other.epochs;
        self.decisions += other.decisions;
        self.promotions += other.promotions;
        self.forced_demotions += other.forced_demotions;
        self.rollbacks += other.rollbacks;
        self.transitions += other.transitions;
        self.max_backoff_epochs = self.max_backoff_epochs.max(other.max_backoff_epochs);
        self.final_level = self.final_level.max(other.final_level);
    }
}

/// The online controller: one per running machine.
///
/// The driver calls [`ModeController::observe_epoch`] at every epoch
/// boundary with the closed telemetry snapshot and the chaos signals; a
/// returned [`ModePlan`] is a promotion *request* the driver tries to
/// apply, reporting back with [`ModeController::commit`] or (when the
/// switch failed mid-flight and was rolled back)
/// [`ModeController::reject`]. Forced demotions bypass the epoch cadence
/// entirely via [`ModeController::force_demote`].
///
/// Every decision is a pure function of the call sequence — the
/// controller holds no clocks and draws no randomness.
#[derive(Debug, Clone)]
pub struct ModeController {
    cfg: ControllerConfig,
    seg_layers: [bool; MAX_LAYERS],
    depth: usize,
    level: DegradeLevel,
    plan: ModePlan,
    /// Epochs since the last committed switch.
    dwell: u64,
    /// Consecutive quiet epochs observed.
    quiet_run: u64,
    /// Epochs observed so far.
    epoch: u64,
    /// Current armed backoff length (0 = none armed yet).
    backoff: u64,
    /// First epoch index at which promotion is allowed again.
    backoff_until: u64,
    window_start: u64,
    window_promotions: u64,
    transitions: Vec<PlanTransition>,
    report: AdaptReport,
}

impl ModeController {
    /// Builds a controller for a machine whose segment-owning layers and
    /// stack depth are given; starts at the healthy baseline plan.
    pub fn new(cfg: ControllerConfig, seg_layers: [bool; MAX_LAYERS], depth: usize) -> Self {
        let depth = depth.clamp(1, MAX_LAYERS);
        ModeController {
            cfg,
            seg_layers,
            depth,
            level: DegradeLevel::Direct,
            plan: ModePlan::baseline(seg_layers, depth),
            dwell: 0,
            quiet_run: 0,
            epoch: 0,
            backoff: 0,
            backoff_until: 0,
            window_start: 0,
            window_promotions: 0,
            transitions: Vec::new(),
            report: AdaptReport::default(),
        }
    }

    /// The plan currently in force.
    pub fn plan(&self) -> ModePlan {
        self.plan
    }

    /// The ladder rung currently in force.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// The transition log so far.
    pub fn transitions(&self) -> &[PlanTransition] {
        &self.transitions
    }

    /// Whether the machine has any segment to adapt (a pure-paging machine
    /// never leaves its baseline).
    pub fn has_segments(&self) -> bool {
        (0..self.depth).any(|k| self.seg_layers[k])
    }

    /// Feeds one closed epoch (walk-side snapshot, fault-side signals) and
    /// returns the plan to promote to, if the hysteresis allows one.
    pub fn observe_epoch(
        &mut self,
        snap: Option<&EpochSnapshot>,
        sig: EpochSignals,
    ) -> Option<ModePlan> {
        self.epoch += 1;
        self.report.epochs += 1;
        self.dwell += 1;
        if self.epoch.saturating_sub(self.window_start) >= self.cfg.window_epochs {
            self.window_start = self.epoch;
            self.window_promotions = 0;
        }
        let escapes_per_kilo = snap.map_or(0, |s| {
            s.escapes.saturating_mul(1000) / s.span().max(1)
        });
        let quiet = sig.faults == 0 && escapes_per_kilo <= self.cfg.promote_escape_per_kilo;
        if quiet {
            self.quiet_run += 1;
        } else {
            self.quiet_run = 0;
        }
        if self.level == DegradeLevel::Direct || !self.has_segments() {
            return None;
        }
        if self.dwell < self.cfg.min_dwell_epochs
            || self.quiet_run < self.cfg.quiet_epochs
            || self.epoch < self.backoff_until
            || self.window_promotions >= self.cfg.max_promotions_per_window
        {
            return None;
        }
        self.window_promotions += 1;
        self.report.decisions += 1;
        let target = DegradeLevel::ALL[self.level.index() - 1];
        Some(ModePlan::ladder(self.seg_layers, self.depth, target))
    }

    /// A segment allocation just failed: returns the one-rung-down plan to
    /// apply immediately, or `None` when already fully degraded (or there
    /// is nothing to degrade).
    pub fn force_demote(&mut self) -> Option<ModePlan> {
        if !self.has_segments() || self.level == DegradeLevel::Paging {
            return None;
        }
        let target = DegradeLevel::ALL[self.level.index() + 1];
        Some(ModePlan::ladder(self.seg_layers, self.depth, target))
    }

    /// The driver applied `to` successfully at `access`; record it and
    /// reset the dwell/quiet clocks. A committed promotion also disarms
    /// the backoff.
    pub fn commit(&mut self, access: u64, to: ModePlan, cause: &'static str) {
        let to_level = to.ladder_level(self.seg_layers);
        self.transitions.push(PlanTransition {
            access,
            from: self.plan,
            to,
            cause,
        });
        self.report.transitions += 1;
        if to_level > self.level {
            self.report.forced_demotions += 1;
        } else {
            self.report.promotions += 1;
            self.backoff = 0;
            self.backoff_until = 0;
        }
        self.level = to_level;
        self.plan = to;
        self.dwell = 0;
        self.quiet_run = 0;
    }

    /// The switch to `to` failed mid-flight at `access` and was rolled
    /// back: record both legs (the attempted switch and the rollback),
    /// arm/double the backoff, and reset the quiet run.
    pub fn reject(&mut self, access: u64, to: ModePlan, cause: &'static str) {
        self.transitions.push(PlanTransition {
            access,
            from: self.plan,
            to,
            cause: "promotion",
        });
        self.transitions.push(PlanTransition {
            access,
            from: to,
            to: self.plan,
            cause,
        });
        self.report.transitions += 2;
        self.report.rollbacks += 1;
        self.backoff = if self.backoff == 0 {
            self.cfg.backoff_base_epochs.max(1)
        } else {
            (self.backoff * 2).min(self.cfg.backoff_cap_epochs)
        };
        self.report.max_backoff_epochs = self.report.max_backoff_epochs.max(self.backoff);
        self.backoff_until = self.epoch + self.backoff;
        self.quiet_run = 0;
    }

    /// The currently armed backoff, in epochs (0 when disarmed).
    pub fn backoff_epochs(&self) -> u64 {
        self.backoff
    }

    /// Finalizes the run: the report (with the final ladder level) and the
    /// full transition log.
    pub fn finish(mut self) -> (AdaptReport, Vec<PlanTransition>) {
        self.report.final_level = self.level;
        (self.report, self.transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEG: [bool; MAX_LAYERS] = [true, true, false];

    fn quiet() -> EpochSignals {
        EpochSignals::default()
    }

    fn noisy() -> EpochSignals {
        EpochSignals {
            faults: 3,
            ..EpochSignals::default()
        }
    }

    fn demote(c: &mut ModeController, access: u64) {
        let to = c.force_demote().expect("not already at paging");
        c.commit(access, to, "segment_alloc_fail");
    }

    #[test]
    fn promotion_requires_dwell_and_quiet_run() {
        let mut c = ModeController::new(ControllerConfig::default(), SEG, 2);
        demote(&mut c, 10);
        demote(&mut c, 20);
        assert_eq!(c.level(), DegradeLevel::Paging);
        // Epoch 1: dwell too short, quiet run too short.
        assert!(c.observe_epoch(None, quiet()).is_none());
        // Epoch 2: both thresholds met (defaults are 2/2).
        let to = c.observe_epoch(None, quiet()).expect("promotion due");
        assert_eq!(to.ladder_level(SEG), DegradeLevel::EscapeHeavy);
        c.commit(25, to, "promotion");
        // Climb continues through probation back to Direct.
        assert!(c.observe_epoch(None, quiet()).is_none());
        let to = c.observe_epoch(None, quiet()).expect("second promotion");
        assert_eq!(to.ladder_level(SEG), DegradeLevel::Direct);
        c.commit(45, to, "promotion");
        assert_eq!(c.level(), DegradeLevel::Direct);
        // At baseline there is nothing left to promote.
        assert!(c.observe_epoch(None, quiet()).is_none());
    }

    #[test]
    fn noisy_epochs_reset_the_quiet_run() {
        let mut c = ModeController::new(ControllerConfig::default(), SEG, 2);
        demote(&mut c, 10);
        for _ in 0..10 {
            assert!(c.observe_epoch(None, noisy()).is_none());
        }
        // One quiet epoch is not enough...
        assert!(c.observe_epoch(None, quiet()).is_none());
        // ...two are.
        assert!(c.observe_epoch(None, quiet()).is_some());
    }

    #[test]
    fn backoff_doubles_and_caps_after_rejected_switches() {
        let cfg = ControllerConfig {
            backoff_base_epochs: 2,
            backoff_cap_epochs: 8,
            window_epochs: 1000,
            max_promotions_per_window: 1000,
            ..ControllerConfig::default()
        };
        let mut c = ModeController::new(cfg, SEG, 2);
        demote(&mut c, 10);
        let mut seen = Vec::new();
        for _ in 0..6 {
            // Drive quiet epochs until a promotion is offered, then fail it.
            let to = loop {
                if let Some(to) = c.observe_epoch(None, quiet()) {
                    break to;
                }
            };
            c.reject(99, to, "rollback");
            seen.push(c.backoff_epochs());
        }
        assert_eq!(seen, vec![2, 4, 8, 8, 8, 8]);
        let (report, log) = c.finish();
        assert_eq!(report.rollbacks, 6);
        assert_eq!(report.max_backoff_epochs, 8);
        // Every rollback emits two legs.
        assert_eq!(log.len(), 1 + 12);
    }

    #[test]
    fn transition_budget_bounds_attempts_per_window() {
        // Pathologically permissive dwell/quiet/backoff so only the window
        // budget is binding.
        let cfg = ControllerConfig {
            min_dwell_epochs: 0,
            quiet_epochs: 0,
            backoff_base_epochs: 1,
            backoff_cap_epochs: 1,
            window_epochs: 1000,
            max_promotions_per_window: 3,
            ..ControllerConfig::default()
        };
        let mut c = ModeController::new(cfg, SEG, 2);
        demote(&mut c, 0);
        demote(&mut c, 0);
        let mut attempts = 0;
        for _ in 0..50 {
            if let Some(to) = c.observe_epoch(None, quiet()) {
                c.reject(0, to, "rollback");
                attempts += 1;
            }
        }
        assert_eq!(attempts, 3, "window budget must bound attempts");
    }

    #[test]
    fn decisions_are_a_pure_function_of_the_input_sequence() {
        let run = || {
            let mut c = ModeController::new(ControllerConfig::default(), SEG, 2);
            let mut log = Vec::new();
            for i in 0..64u64 {
                if i % 17 == 3 {
                    if let Some(to) = c.force_demote() {
                        c.commit(i * 100, to, "segment_alloc_fail");
                    }
                }
                let sig = if i % 5 == 0 { noisy() } else { quiet() };
                if let Some(to) = c.observe_epoch(None, sig) {
                    if i % 7 == 0 {
                        c.reject(i * 100 + 50, to, "rollback");
                    } else {
                        c.commit(i * 100 + 50, to, "promotion");
                    }
                }
                log.push((c.level(), c.backoff_epochs()));
            }
            let (report, transitions) = c.finish();
            (log, report, transitions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn segmentless_controller_never_moves() {
        let mut c = ModeController::new(ControllerConfig::default(), [false; 3], 2);
        assert!(c.force_demote().is_none());
        for _ in 0..8 {
            assert!(c.observe_epoch(None, quiet()).is_none());
        }
        let (report, log) = c.finish();
        assert_eq!(report.transitions, 0);
        assert!(log.is_empty());
    }
}
