//! Per-layer mode plans.

use mv_chaos::DegradeLevel;

/// The maximum translation-stack depth a plan can describe (the 3-deep
/// nested-nested stack is the deepest the simulator builds).
pub const MAX_LAYERS: usize = 3;

/// A per-layer translation-mode assignment for one machine.
///
/// Layer `0` is the outermost (guest) dimension; deeper layers follow the
/// machine's [`LayerStack`] order (mid, then host for a 3-deep stack; host
/// at index `1` for the 2-deep stacks). Each layer carries a
/// [`DegradeLevel`]:
///
/// * [`DegradeLevel::Direct`] — the layer's direct segment is programmed
///   and unguarded (only meaningful on layers that own a segment);
/// * [`DegradeLevel::EscapeHeavy`] — the segment stays programmed but is
///   guarded by a populated escape filter;
/// * [`DegradeLevel::Paging`] — the layer translates purely through its
///   page table (segment nullified, or a layer that never had one).
///
/// Plans are plain values: comparing two plans tells a machine exactly
/// which layers changed, and applying the diff inside one batched
/// mode-switch flush is what makes a live transition safe.
///
/// [`LayerStack`]: https://docs.rs/mv-core
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModePlan {
    levels: [DegradeLevel; MAX_LAYERS],
    depth: u8,
}

impl ModePlan {
    /// The healthy baseline for a machine: every segment-owning layer
    /// fully direct, every paging-only layer at [`DegradeLevel::Paging`].
    ///
    /// `seg_layers[k]` says whether layer `k` owns a direct segment;
    /// `depth` is the machine's translation-stack depth (1..=3).
    pub fn baseline(seg_layers: [bool; MAX_LAYERS], depth: usize) -> Self {
        Self::ladder(seg_layers, depth, DegradeLevel::Direct)
    }

    /// The plan the classic degradation ladder associates with `level`:
    ///
    /// * `Direct` — the baseline (all segments direct);
    /// * `EscapeHeavy` — the *outermost* segment-owning layer guarded by a
    ///   populated escape filter, the rest still direct;
    /// * `Paging` — every layer at paging (all segments nullified).
    pub fn ladder(seg_layers: [bool; MAX_LAYERS], depth: usize, level: DegradeLevel) -> Self {
        let depth = depth.clamp(1, MAX_LAYERS);
        let mut levels = [DegradeLevel::Paging; MAX_LAYERS];
        match level {
            DegradeLevel::Direct | DegradeLevel::EscapeHeavy => {
                for (k, lv) in levels.iter_mut().enumerate().take(depth) {
                    if seg_layers[k] {
                        *lv = DegradeLevel::Direct;
                    }
                }
                if level == DegradeLevel::EscapeHeavy {
                    if let Some(k) = (0..depth).find(|&k| seg_layers[k]) {
                        levels[k] = DegradeLevel::EscapeHeavy;
                    }
                }
            }
            DegradeLevel::Paging => {}
        }
        ModePlan {
            levels,
            depth: depth as u8,
        }
    }

    /// Stack depth the plan covers.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// The level assigned to layer `k` (layers at or beyond
    /// [`ModePlan::depth`] read as [`DegradeLevel::Paging`]).
    pub fn level(&self, k: usize) -> DegradeLevel {
        if k < self.depth() {
            self.levels[k]
        } else {
            DegradeLevel::Paging
        }
    }

    /// Returns a copy with layer `k`'s level replaced.
    pub fn with_level(mut self, k: usize, level: DegradeLevel) -> Self {
        if k < self.depth() {
            self.levels[k] = level;
        }
        self
    }

    /// The ladder rung this plan corresponds to, judged over the
    /// segment-owning layers: the worst (most degraded) level any of them
    /// is at, or [`DegradeLevel::Direct`] when no layer owns a segment.
    pub fn ladder_level(&self, seg_layers: [bool; MAX_LAYERS]) -> DegradeLevel {
        (0..self.depth())
            .filter(|&k| seg_layers[k])
            .map(|k| self.levels[k])
            .max()
            .unwrap_or(DegradeLevel::Direct)
    }

    /// Human-readable per-layer label, outermost first, e.g.
    /// `"escape_heavy/direct"` or `"paging/paging/paging"`.
    pub fn label(&self) -> String {
        let parts: Vec<&str> = (0..self.depth()).map(|k| self.levels[k].label()).collect();
        parts.join("/")
    }
}

impl core::fmt::Display for ModePlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_plans_match_the_classic_state_machine() {
        // DD-style: both layers own segments.
        let seg = [true, true, false];
        let base = ModePlan::baseline(seg, 2);
        assert_eq!(base.label(), "direct/direct");
        let eh = ModePlan::ladder(seg, 2, DegradeLevel::EscapeHeavy);
        assert_eq!(eh.label(), "escape_heavy/direct");
        let pg = ModePlan::ladder(seg, 2, DegradeLevel::Paging);
        assert_eq!(pg.label(), "paging/paging");
        assert_eq!(base.ladder_level(seg), DegradeLevel::Direct);
        assert_eq!(eh.ladder_level(seg), DegradeLevel::EscapeHeavy);
        assert_eq!(pg.ladder_level(seg), DegradeLevel::Paging);
    }

    #[test]
    fn escape_heavy_guards_the_outermost_available_segment() {
        // VD-style: only the host layer owns a segment.
        let seg = [false, true, false];
        let eh = ModePlan::ladder(seg, 2, DegradeLevel::EscapeHeavy);
        assert_eq!(eh.label(), "paging/escape_heavy");
        assert_eq!(eh.level(0), DegradeLevel::Paging);
        assert_eq!(eh.level(1), DegradeLevel::EscapeHeavy);
    }

    #[test]
    fn segmentless_machines_are_already_at_baseline_paging() {
        let seg = [false; 3];
        let base = ModePlan::baseline(seg, 2);
        assert_eq!(base.label(), "paging/paging");
        assert_eq!(base.ladder_level(seg), DegradeLevel::Direct);
    }

    #[test]
    fn out_of_range_layers_read_as_paging() {
        let plan = ModePlan::baseline([true, true, true], 3);
        assert_eq!(plan.level(7), DegradeLevel::Paging);
        assert_eq!(plan.depth(), 3);
    }
}
