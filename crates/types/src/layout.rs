//! x86-64 address-space layout constants.
//!
//! Two architectural facts matter to the paper:
//!
//! * The virtual address space is 48-bit canonical (256 TiB), which is why
//!   both translation levels need 4-level radix page tables — and why a 2D
//!   nested walk costs up to 24 memory references.
//! * The physical address space has a ~1 GiB **I/O gap** just below 4 GiB
//!   reserved for memory-mapped I/O (Section IV: "Reclaiming I/O gap
//!   memory"). The gap splits low physical memory and prevents a single
//!   direct segment from covering all of a VM's guest-physical memory unless
//!   the OS relocates memory from below the gap.

use crate::{AddrRange, Gpa, GIB};

/// Number of virtual-address bits translated by the 4-level page table.
pub const VA_BITS: u32 = 48;

/// Size of the canonical lower half of the virtual address space in bytes.
pub const CANONICAL_LOW_SIZE: u64 = 1 << (VA_BITS - 1);

/// Number of page-table levels in x86-64 long mode.
pub const PT_LEVELS: u8 = 4;

/// Maximum memory references for a native (1D) page walk.
pub const NATIVE_WALK_MAX_REFS: u32 = PT_LEVELS as u32;

/// Maximum memory references for a virtualized (2D) nested page walk:
/// translating the root pointer and each of the 4 guest levels costs a full
/// nested walk plus the guest reference itself (5 × 4 + 4 = 24).
pub const NESTED_WALK_MAX_REFS: u32 = (PT_LEVELS as u32 + 1) * PT_LEVELS as u32 + PT_LEVELS as u32;

/// First byte of the x86-64 memory-mapped-I/O gap (3 GiB).
pub const IO_GAP_START: Gpa = Gpa::new(3 * GIB);

/// One past the last byte of the I/O gap (4 GiB).
pub const IO_GAP_END: Gpa = Gpa::new(4 * GIB);

/// The guest-physical I/O gap as a range.
#[must_use]
pub fn io_gap() -> AddrRange<Gpa> {
    AddrRange::new(IO_GAP_START, IO_GAP_END)
}

/// Amount of low memory a Linux guest keeps below the I/O gap after
/// hot-unplugging the rest (Section VI.C found 256 MiB suffices to boot).
pub const LOW_MEMORY_KEEP: u64 = 256 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_walk_is_24_references() {
        assert_eq!(NESTED_WALK_MAX_REFS, 24);
        assert_eq!(NATIVE_WALK_MAX_REFS, 4);
    }

    #[test]
    fn io_gap_is_one_gib_below_4g() {
        let gap = io_gap();
        assert_eq!(gap.len(), GIB);
        assert_eq!(gap.start().as_u64(), 3 * GIB);
        assert_eq!(gap.end().as_u64(), 4 * GIB);
    }

    #[test]
    fn canonical_space_is_128_tib_per_half() {
        assert_eq!(CANONICAL_LOW_SIZE, 128 << 40);
    }
}
