//! Page sizes and typed page/frame numbers.

use core::fmt;
use core::marker::PhantomData;

use crate::addr::Address;

/// Shift of the base (4 KiB) page size.
pub const PAGE_SHIFT_4K: u32 = 12;
/// The base page size in bytes (4 KiB).
pub const PAGE_SIZE_4K: u64 = 1 << PAGE_SHIFT_4K;

/// One of the three x86-64 translation granularities.
///
/// x86-64 maps memory at 4 KiB (leaf at level 1), 2 MiB (leaf at level 2),
/// or 1 GiB (leaf at level 3). The paper's evaluation sweeps guest and VMM
/// page-size combinations across all three.
///
/// # Example
///
/// ```
/// use mv_types::PageSize;
///
/// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Size2M.covered_4k_pages(), 512);
/// assert!(PageSize::Size4K < PageSize::Size1G);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub enum PageSize {
    /// 4 KiB page (level-1 leaf).
    #[default]
    Size4K,
    /// 2 MiB page (level-2 leaf).
    Size2M,
    /// 1 GiB page (level-3 leaf).
    Size1G,
}

impl PageSize {
    /// All page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// Size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 << 10,
            PageSize::Size2M => 2 << 20,
            PageSize::Size1G => 1 << 30,
        }
    }

    /// log2 of the size in bytes.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Page-table level at which a leaf of this size sits (1-based: PTE=1,
    /// PDE=2, PDPTE=3).
    #[inline]
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }

    /// Number of 4 KiB pages covered by one page of this size.
    #[inline]
    pub const fn covered_4k_pages(self) -> u64 {
        self.bytes() / PAGE_SIZE_4K
    }

    /// Mask selecting the offset-within-page bits.
    #[inline]
    pub const fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }

    /// Short label used in experiment output (`"4K"`, `"2M"`, `"1G"`),
    /// matching the configuration labels in the paper's figures.
    #[inline]
    pub const fn label(self) -> &'static str {
        match self {
            PageSize::Size4K => "4K",
            PageSize::Size2M => "2M",
            PageSize::Size1G => "1G",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A 4 KiB-granule page (or frame) number in address space `A`.
///
/// Page numbers always use the base 4 KiB granule; larger pages are
/// represented by their first 4 KiB page number plus a [`PageSize`].
///
/// # Example
///
/// ```
/// use mv_types::{Gpa, PageNum, PageSize};
///
/// let pn = PageNum::<Gpa>::containing(Gpa::new(0x5432));
/// assert_eq!(pn.index(), 5);
/// assert_eq!(pn.base(), Gpa::new(0x5000));
/// ```
pub struct PageNum<A> {
    index: u64,
    _space: PhantomData<fn() -> A>,
}

impl<A: Address> PageNum<A> {
    /// Creates a page number from its index (address / 4 KiB).
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self {
            index,
            _space: PhantomData,
        }
    }

    /// The page containing `addr`.
    #[inline]
    pub fn containing(addr: A) -> Self {
        Self::new(addr.as_u64() >> PAGE_SHIFT_4K)
    }

    /// The raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.index
    }

    /// The first byte address of the page.
    #[inline]
    pub fn base(self) -> A {
        A::from_u64(self.index << PAGE_SHIFT_4K)
    }

    /// The page `n` pages after this one.
    #[inline]
    #[must_use]
    pub const fn add(self, n: u64) -> Self {
        Self::new(self.index + n)
    }
}

// Manual impls so `A` need not implement the traits (C-STRUCT-BOUNDS).
impl<A> Copy for PageNum<A> {}
impl<A> Clone for PageNum<A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<A> PartialEq for PageNum<A> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<A> Eq for PageNum<A> {}
impl<A> PartialOrd for PageNum<A> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<A> Ord for PageNum<A> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.index.cmp(&other.index)
    }
}
impl<A> core::hash::Hash for PageNum<A> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}
impl<A: Address> fmt::Debug for PageNum<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageNum<{}>({:#x})", A::SPACE, self.index)
    }
}

/// A count of 4 KiB pages, with byte-size conversion helpers.
///
/// # Example
///
/// ```
/// use mv_types::PageCount;
///
/// let c = PageCount::from_bytes_ceil(5000);
/// assert_eq!(c.pages(), 2);
/// assert_eq!(c.bytes(), 8192);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct PageCount(u64);

impl PageCount {
    /// A count of exactly `pages` 4 KiB pages.
    #[inline]
    pub const fn new(pages: u64) -> Self {
        Self(pages)
    }

    /// The smallest page count covering `bytes` bytes.
    #[inline]
    pub const fn from_bytes_ceil(bytes: u64) -> Self {
        Self(bytes.div_ceil(PAGE_SIZE_4K))
    }

    /// Number of pages.
    #[inline]
    pub const fn pages(self) -> u64 {
        self.0
    }

    /// Total bytes covered.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0 * PAGE_SIZE_4K
    }
}

impl fmt::Display for PageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gva;

    #[test]
    fn page_size_bytes_and_shifts_agree() {
        for s in PageSize::ALL {
            assert_eq!(s.bytes(), 1u64 << s.shift());
            assert_eq!(s.offset_mask(), s.bytes() - 1);
        }
    }

    #[test]
    fn page_size_leaf_levels() {
        assert_eq!(PageSize::Size4K.leaf_level(), 1);
        assert_eq!(PageSize::Size2M.leaf_level(), 2);
        assert_eq!(PageSize::Size1G.leaf_level(), 3);
    }

    #[test]
    fn page_size_coverage() {
        assert_eq!(PageSize::Size4K.covered_4k_pages(), 1);
        assert_eq!(PageSize::Size2M.covered_4k_pages(), 512);
        assert_eq!(PageSize::Size1G.covered_4k_pages(), 512 * 512);
    }

    #[test]
    fn page_size_labels() {
        assert_eq!(PageSize::Size4K.to_string(), "4K");
        assert_eq!(PageSize::Size2M.to_string(), "2M");
        assert_eq!(PageSize::Size1G.to_string(), "1G");
    }

    #[test]
    fn page_size_ordering() {
        assert!(PageSize::Size4K < PageSize::Size2M);
        assert!(PageSize::Size2M < PageSize::Size1G);
        assert_eq!(PageSize::default(), PageSize::Size4K);
    }

    #[test]
    fn page_num_round_trips() {
        let pn = PageNum::<Gva>::containing(Gva::new(0x1234_5678));
        assert_eq!(pn.index(), 0x1234_5678 >> 12);
        assert_eq!(pn.base(), Gva::new(0x1234_5000));
        assert_eq!(pn.add(2).base(), Gva::new(0x1234_7000));
    }

    #[test]
    fn page_num_debug_names_space() {
        let pn = PageNum::<Gva>::new(0x10);
        assert_eq!(format!("{pn:?}"), "PageNum<gVA>(0x10)");
    }

    #[test]
    fn page_count_conversions() {
        assert_eq!(PageCount::from_bytes_ceil(0).pages(), 0);
        assert_eq!(PageCount::from_bytes_ceil(1).pages(), 1);
        assert_eq!(PageCount::from_bytes_ceil(4096).pages(), 1);
        assert_eq!(PageCount::from_bytes_ceil(4097).pages(), 2);
        assert_eq!(PageCount::new(3).bytes(), 12288);
        assert_eq!(PageCount::new(3).to_string(), "3 pages");
    }
}
