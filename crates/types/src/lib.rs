//! Common foundation types for the memory-virtualization simulator.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * Strongly-typed addresses for each of the four address spaces involved in
//!   virtualized execution ([`Gva`], [`Gpa`], [`Hpa`], [`Hva`]), tied together
//!   by the sealed [`Address`] trait.
//! * Page-granularity helpers: [`PageSize`] (4 KiB / 2 MiB / 1 GiB, the three
//!   x86-64 translation sizes) and typed page/frame numbers.
//! * Half-open address ranges ([`AddrRange`]) used for segments, memory
//!   slots, VMAs, and reservations.
//! * Protection flags ([`Prot`]).
//! * The x86-64 physical-address-space layout constants ([`layout`]),
//!   including the 3–4 GiB memory-mapped-I/O gap that Section IV of the
//!   paper works around.
//!
//! # Example
//!
//! ```
//! use mv_types::{Gva, Gpa, PageSize, AddrRange};
//!
//! let va = Gva::new(0x7f00_0000_1000);
//! assert!(va.is_aligned(PageSize::Size4K));
//! let seg: AddrRange<Gpa> = AddrRange::from_start_len(Gpa::new(4 << 30), 1 << 30);
//! assert!(seg.contains(Gpa::new(0x1_2345_6000)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod error;
pub mod layout;
mod page;
mod prot;
mod range;
pub mod rng;

pub use addr::{Address, Gpa, Gva, Hpa, Hva};
pub use error::{AlignError, RangeError};
pub use page::{PageCount, PageNum, PageSize, PAGE_SHIFT_4K, PAGE_SIZE_4K};
pub use prot::Prot;
pub use range::AddrRange;

/// Number of bytes in one kibibyte.
pub const KIB: u64 = 1 << 10;
/// Number of bytes in one mebibyte.
pub const MIB: u64 = 1 << 20;
/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1 << 30;
/// Number of bytes in one tebibyte.
pub const TIB: u64 = 1 << 40;
