//! Small shared error types.

use core::fmt;

/// An address failed an alignment requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignError {
    /// Raw address value that failed the check.
    pub addr: u64,
    /// Required alignment in bytes.
    pub required: u64,
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "address {:#x} is not aligned to {:#x} bytes",
            self.addr, self.required
        )
    }
}

impl std::error::Error for AlignError {}

/// An address fell outside the expected range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeError {
    /// Raw address value that failed the check.
    pub addr: u64,
    /// Start of the permitted range.
    pub start: u64,
    /// End (exclusive) of the permitted range.
    pub end: u64,
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "address {:#x} outside range [{:#x}..{:#x})",
            self.addr, self.start, self.end
        )
    }
}

impl std::error::Error for RangeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = AlignError {
            addr: 0x1234,
            required: 0x1000,
        };
        assert_eq!(e.to_string(), "address 0x1234 is not aligned to 0x1000 bytes");
        let e = RangeError {
            addr: 0x10,
            start: 0x100,
            end: 0x200,
        };
        assert_eq!(e.to_string(), "address 0x10 outside range [0x100..0x200)");
    }
}
