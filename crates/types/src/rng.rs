//! A small, dependency-free pseudo-random number generator.
//!
//! The simulator needs deterministic, seedable randomness for workload
//! reference streams, fault injection, and randomized tests — it does not
//! need cryptographic strength. [`StdRng`] is xoshiro256++ (Blackman &
//! Vigna), seeded through SplitMix64 so that any 64-bit seed yields a
//! well-mixed state. The API mirrors the subset of the `rand` crate the
//! workspace uses, so call sites read the same while the workspace builds
//! with no external dependencies (and therefore fully offline).
//!
//! # Example
//!
//! ```
//! use mv_types::rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1u32..7);
//! assert!((1..7).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let again = StdRng::seed_from_u64(42).gen_range(1u32..7);
//! assert_eq!(die, again, "same seed, same stream");
//! let _ = coin;
//! ```

use core::ops::Range;

/// Derives an independent child seed from a base seed and a stream index.
///
/// Parallel experiment grids give every (workload, mode, trial) cell its
/// own generator; deriving the cell seed as `base + trial` would produce
/// heavily correlated xoshiro states. `split_seed` instead runs one
/// SplitMix64 step over a mix of `seed` and `index`, so children are
/// statistically independent while remaining a pure function of their
/// coordinates — the property the deterministic parallel runner relies on
/// (`--jobs N` never changes which seed a cell gets).
///
/// # Example
///
/// ```
/// use mv_types::rng::split_seed;
///
/// let a = split_seed(42, 0);
/// let b = split_seed(42, 1);
/// assert_ne!(a, b, "distinct streams per index");
/// assert_eq!(a, split_seed(42, 0), "pure function of (seed, index)");
/// ```
#[must_use]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    // One SplitMix64 step (same finalizer StdRng seeds through) over the
    // golden-ratio-spaced stream position.
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform random generation over the integer types the simulator samples.
///
/// Implemented via 128-bit widening multiply (Lemire's method), which maps
/// a 64-bit draw onto `[0, span)` with bias below 2⁻⁶⁴ — irrelevant for
/// simulation purposes and branch-free.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value in `[low, high)` from `word`, a uniform u64.
    fn from_word(word: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_word(word: u64, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                let off = ((word as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generator interface: everything is derived from [`Rng::next_u64`].
pub trait Rng {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::from_word(self.next_u64(), range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // Compare in the 53-bit fixed-point domain: exact for p = 0 and 1.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// xoshiro256++ — the workspace's deterministic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 (the initialization xoshiro's authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform u64 (inherent mirror of [`Rng::next_u64`] so the trait
    /// need not be in scope).
    #[inline]
    pub fn next_word(&mut self) -> u64 {
        Rng::next_u64(self)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Random selection from iterators (the `rand::seq::IteratorRandom`
/// subset the workspace uses).
pub trait IteratorRandom: Iterator + Sized {
    /// Reservoir-samples up to `n` distinct items uniformly from the
    /// iterator. Returns fewer than `n` only if the iterator is shorter
    /// than `n`. Order of the sample is arbitrary.
    fn choose_multiple<R: Rng>(self, rng: &mut R, n: usize) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(n);
        for (i, item) in self.enumerate() {
            if reservoir.len() < n {
                reservoir.push(item);
            } else {
                let j = rng.gen_range(0..i + 1);
                if j < n {
                    reservoir[j] = item;
                }
            }
        }
        reservoir
    }

    /// Uniformly chooses one item, if the iterator is non-empty.
    fn choose<R: Rng>(self, rng: &mut R) -> Option<Self::Item> {
        self.choose_multiple(rng, 1).pop()
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_streams_are_distinct_and_uncorrelated() {
        let children: Vec<u64> = (0..64).map(|i| split_seed(42, i)).collect();
        let mut dedup = children.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "no colliding child seeds");
        // Neighboring streams must not produce near-identical sequences
        // (the failure mode of seeding with `base + index` directly).
        let s0: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(42, 0));
            (0..8).map(|_| r.next_u64()).collect()
        };
        let s1: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(42, 1));
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert!(s0.iter().zip(&s1).all(|(a, b)| a != b));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 drawn");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "p=0.5 near half: {heads}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_multiple_samples_without_replacement() {
        let mut r = StdRng::seed_from_u64(5);
        let sample = (0u64..100).choose_multiple(&mut r, 10);
        assert_eq!(sample.len(), 10);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "no duplicates");
        // Short iterators yield everything.
        let all = (0u64..3).choose_multiple(&mut r, 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn choose_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(6);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[(0usize..4).choose(&mut r).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed counts {counts:?}");
        }
    }
}
