//! Page-protection flags.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};

/// Page protection flags (read / write / execute / user).
///
/// A tiny hand-rolled flag set (the workspace avoids external flag crates).
/// Primary regions in the paper are defined as contiguous virtual address
/// ranges mapped *with the same access permissions*, so protections are
/// compared frequently.
///
/// # Example
///
/// ```
/// use mv_types::Prot;
///
/// let rw = Prot::READ | Prot::WRITE;
/// assert!(rw.contains(Prot::READ));
/// assert!(!rw.contains(Prot::EXEC));
/// assert_eq!(format!("{rw}"), "rw-");
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Default)]
pub struct Prot(u8);

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot(0);
    /// Readable.
    pub const READ: Prot = Prot(1);
    /// Writable.
    pub const WRITE: Prot = Prot(2);
    /// Executable.
    pub const EXEC: Prot = Prot(4);
    /// Read + write, the typical data mapping.
    pub const RW: Prot = Prot(1 | 2);
    /// Read + write + execute.
    pub const RWX: Prot = Prot(1 | 2 | 4);

    /// Whether every flag in `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: Prot) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no flags are set.
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw bits (bit 0 = read, bit 1 = write, bit 2 = exec).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs flags from raw bits, ignoring unknown bits.
    #[inline]
    pub const fn from_bits_truncate(bits: u8) -> Prot {
        Prot(bits & 0b111)
    }
}

impl BitOr for Prot {
    type Output = Prot;
    #[inline]
    fn bitor(self, rhs: Prot) -> Prot {
        Prot(self.0 | rhs.0)
    }
}

impl BitOrAssign for Prot {
    #[inline]
    fn bitor_assign(&mut self, rhs: Prot) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Prot {
    type Output = Prot;
    #[inline]
    fn bitand(self, rhs: Prot) -> Prot {
        Prot(self.0 & rhs.0)
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.contains(Prot::READ) { 'r' } else { '-' },
            if self.contains(Prot::WRITE) { 'w' } else { '-' },
            if self.contains(Prot::EXEC) { 'x' } else { '-' },
        )
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prot({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_semantics() {
        assert!(Prot::RW.contains(Prot::READ));
        assert!(Prot::RW.contains(Prot::WRITE));
        assert!(Prot::RW.contains(Prot::RW));
        assert!(!Prot::RW.contains(Prot::EXEC));
        assert!(Prot::RWX.contains(Prot::RW));
        // NONE is contained in everything.
        assert!(Prot::NONE.contains(Prot::NONE));
        assert!(Prot::READ.contains(Prot::NONE));
    }

    #[test]
    fn operators() {
        assert_eq!(Prot::READ | Prot::WRITE, Prot::RW);
        assert_eq!(Prot::RWX & Prot::WRITE, Prot::WRITE);
        let mut p = Prot::READ;
        p |= Prot::EXEC;
        assert!(p.contains(Prot::EXEC));
    }

    #[test]
    fn bits_round_trip() {
        for bits in 0..8 {
            assert_eq!(Prot::from_bits_truncate(bits).bits(), bits);
        }
        assert_eq!(Prot::from_bits_truncate(0xff), Prot::RWX);
    }

    #[test]
    fn display_format() {
        assert_eq!(Prot::NONE.to_string(), "---");
        assert_eq!(Prot::READ.to_string(), "r--");
        assert_eq!(Prot::RW.to_string(), "rw-");
        assert_eq!(Prot::RWX.to_string(), "rwx");
        assert_eq!(format!("{:?}", Prot::RW), "Prot(rw-)");
    }

    #[test]
    fn default_is_none() {
        assert!(Prot::default().is_none());
    }
}
