//! Half-open address ranges.

use core::fmt;

use crate::addr::Address;
use crate::page::{PageSize, PAGE_SIZE_4K};

/// A half-open address range `[start, end)` in address space `A`.
///
/// Ranges are the unit of segments (BASE..LIMIT), VMAs, KVM memory slots, and
/// physical reservations throughout the simulator. An empty range
/// (`start == end`) is valid and contains no addresses; this mirrors the
/// paper's convention of "nullifying" a segment by setting BASE = LIMIT.
///
/// # Example
///
/// ```
/// use mv_types::{AddrRange, Gva};
///
/// let r = AddrRange::new(Gva::new(0x1000), Gva::new(0x3000));
/// assert_eq!(r.len(), 0x2000);
/// assert!(r.contains(Gva::new(0x2fff)));
/// assert!(!r.contains(Gva::new(0x3000)));
/// ```
pub struct AddrRange<A> {
    start: A,
    end: A,
}

impl<A: Address> AddrRange<A> {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[inline]
    pub fn new(start: A, end: A) -> Self {
        assert!(
            end >= start,
            "range end {:#x} precedes start {:#x}",
            end.as_u64(),
            start.as_u64()
        );
        Self { start, end }
    }

    /// Creates the range `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` overflows `u64`.
    #[inline]
    pub fn from_start_len(start: A, len: u64) -> Self {
        let end = start
            .as_u64()
            .checked_add(len)
            .expect("range end overflows u64");
        Self::new(start, A::from_u64(end))
    }

    /// The empty range at address zero.
    #[inline]
    pub fn empty() -> Self {
        Self::new(A::from_u64(0), A::from_u64(0))
    }

    /// First address in the range.
    #[inline]
    pub fn start(&self) -> A {
        self.start
    }

    /// One past the last address in the range.
    #[inline]
    pub fn end(&self) -> A {
        self.end
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end.as_u64() - self.start.as_u64()
    }

    /// Whether the range contains no addresses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` lies within the range.
    #[inline]
    pub fn contains(&self, addr: A) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether `other` is entirely within this range.
    #[inline]
    pub fn contains_range(&self, other: &Self) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// Whether the two ranges share any address.
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The intersection of the two ranges, or `None` if disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Self::new(start, end))
        } else {
            None
        }
    }

    /// Whether both endpoints are aligned to `size`.
    #[inline]
    pub fn is_aligned(&self, size: PageSize) -> bool {
        self.start.is_aligned(size) && self.end.is_aligned(size)
    }

    /// Number of whole 4 KiB pages in the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is not 4 KiB-aligned.
    pub fn page_count_4k(&self) -> u64 {
        assert!(
            self.is_aligned(PageSize::Size4K),
            "range {self:?} is not 4K-aligned"
        );
        self.len() / PAGE_SIZE_4K
    }

    /// Iterates over the base addresses of each page of size `size` in the
    /// range. Partial pages at either end are not yielded.
    pub fn pages(&self, size: PageSize) -> Pages<A> {
        let bytes = size.bytes();
        let first = self.start.align_up(bytes);
        Pages {
            next: first.as_u64(),
            end: self.end.as_u64(),
            step: bytes,
            _space: core::marker::PhantomData,
        }
    }
}

impl<A> Copy for AddrRange<A> where A: Copy {}
impl<A: Clone> Clone for AddrRange<A> {
    fn clone(&self) -> Self {
        Self {
            start: self.start.clone(),
            end: self.end.clone(),
        }
    }
}
impl<A: PartialEq> PartialEq for AddrRange<A> {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start && self.end == other.end
    }
}
impl<A: Eq> Eq for AddrRange<A> {}
impl<A: core::hash::Hash> core::hash::Hash for AddrRange<A> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.start.hash(state);
        self.end.hash(state);
    }
}

impl<A: Address> fmt::Debug for AddrRange<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{:#x}..{:#x})",
            A::SPACE,
            self.start.as_u64(),
            self.end.as_u64()
        )
    }
}

impl<A: Address> fmt::Display for AddrRange<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.start.as_u64(), self.end.as_u64())
    }
}

/// Iterator over page base addresses in a range; created by
/// [`AddrRange::pages`].
#[derive(Debug, Clone)]
pub struct Pages<A> {
    next: u64,
    end: u64,
    step: u64,
    _space: core::marker::PhantomData<fn() -> A>,
}

impl<A: Address> Iterator for Pages<A> {
    type Item = A;

    fn next(&mut self) -> Option<A> {
        if self.next.checked_add(self.step)? <= self.end {
            let out = A::from_u64(self.next);
            self.next += self.step;
            Some(out)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.end.saturating_sub(self.next) / self.step) as usize;
        (remaining, Some(remaining))
    }
}

impl<A: Address> ExactSizeIterator for Pages<A> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gpa, Gva};

    fn r(start: u64, end: u64) -> AddrRange<Gva> {
        AddrRange::new(Gva::new(start), Gva::new(end))
    }

    #[test]
    fn construction_and_accessors() {
        let x = r(0x1000, 0x3000);
        assert_eq!(x.start(), Gva::new(0x1000));
        assert_eq!(x.end(), Gva::new(0x3000));
        assert_eq!(x.len(), 0x2000);
        assert!(!x.is_empty());
        assert!(AddrRange::<Gpa>::empty().is_empty());
    }

    #[test]
    fn from_start_len_matches_new() {
        assert_eq!(AddrRange::from_start_len(Gva::new(0x1000), 0x2000), r(0x1000, 0x3000));
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn reversed_range_panics() {
        let _ = r(0x2000, 0x1000);
    }

    #[test]
    fn contains_is_half_open() {
        let x = r(0x1000, 0x3000);
        assert!(x.contains(Gva::new(0x1000)));
        assert!(x.contains(Gva::new(0x2fff)));
        assert!(!x.contains(Gva::new(0x3000)));
        assert!(!x.contains(Gva::new(0xfff)));
        assert!(!r(0x1000, 0x1000).contains(Gva::new(0x1000)));
    }

    #[test]
    fn contains_range_rules() {
        let x = r(0x1000, 0x3000);
        assert!(x.contains_range(&r(0x1000, 0x3000)));
        assert!(x.contains_range(&r(0x1800, 0x2000)));
        assert!(x.contains_range(&r(0, 0))); // empty is contained anywhere
        assert!(!x.contains_range(&r(0x800, 0x2000)));
        assert!(!x.contains_range(&r(0x2000, 0x3001)));
    }

    #[test]
    fn overlap_rules() {
        let x = r(0x1000, 0x3000);
        assert!(x.overlaps(&r(0x2fff, 0x4000)));
        assert!(!x.overlaps(&r(0x3000, 0x4000)));
        assert!(!x.overlaps(&r(0, 0x1000)));
        assert!(!x.overlaps(&r(0x2000, 0x2000))); // empty never overlaps
    }

    #[test]
    fn intersection_rules() {
        let x = r(0x1000, 0x3000);
        assert_eq!(x.intersection(&r(0x2000, 0x4000)), Some(r(0x2000, 0x3000)));
        assert_eq!(x.intersection(&r(0x3000, 0x4000)), None);
        assert_eq!(x.intersection(&x), Some(x));
    }

    #[test]
    fn page_iteration_trims_partial_pages() {
        let x = r(0x1800, 0x4800);
        let pages: Vec<_> = x.pages(PageSize::Size4K).collect();
        assert_eq!(pages, vec![Gva::new(0x2000), Gva::new(0x3000)]);
        assert_eq!(x.pages(PageSize::Size4K).len(), 2);
    }

    #[test]
    fn page_iteration_aligned_range() {
        let x = r(0x2000, 0x5000);
        assert_eq!(x.page_count_4k(), 3);
        assert_eq!(x.pages(PageSize::Size4K).count(), 3);
        assert_eq!(x.pages(PageSize::Size2M).count(), 0);
    }

    #[test]
    fn display_and_debug() {
        let x = r(0x1000, 0x2000);
        assert_eq!(format!("{x}"), "[0x1000..0x2000)");
        assert_eq!(format!("{x:?}"), "gVA[0x1000..0x2000)");
    }
}
