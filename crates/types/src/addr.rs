//! Strongly-typed addresses for the four address spaces of virtualized
//! execution.
//!
//! Virtualized address translation involves four distinct address spaces:
//!
//! * **gVA** — guest virtual addresses, what a guest application issues.
//! * **gPA** — guest physical addresses, what the guest OS believes is RAM.
//! * **hVA** — host virtual addresses, the VMM process's own address space
//!   (KVM maps guest physical memory into the VMM process).
//! * **hPA** — host physical addresses, actual machine memory.
//!
//! Confusing these spaces is the classic source of bugs in MMU code, so each
//! gets its own newtype. The sealed [`Address`] trait lets generic machinery
//! (page tables, allocators, ranges) work across spaces without permitting
//! accidental cross-space arithmetic.

use core::fmt;

mod private {
    pub trait Sealed {}
}

/// A 64-bit address in one specific address space.
///
/// This trait is sealed: only the four address types defined in this module
/// implement it. It provides the minimal raw-value round-trip that generic
/// containers (page tables, TLBs, allocators) need, while the newtypes keep
/// distinct address spaces from mixing.
///
/// # Example
///
/// ```
/// use mv_types::{Address, Gva};
///
/// fn page_offset<A: Address>(a: A) -> u64 {
///     a.as_u64() & 0xfff
/// }
/// assert_eq!(page_offset(Gva::new(0x1234)), 0x234);
/// ```
pub trait Address:
    private::Sealed
    + Copy
    + Clone
    + Eq
    + PartialEq
    + Ord
    + PartialOrd
    + core::hash::Hash
    + fmt::Debug
    + fmt::Display
    + Default
    + Send
    + Sync
    + 'static
{
    /// Short human-readable name of the address space (e.g. `"gVA"`).
    const SPACE: &'static str;

    /// Constructs an address from its raw 64-bit value.
    fn from_u64(raw: u64) -> Self;

    /// Returns the raw 64-bit value of this address.
    fn as_u64(self) -> u64;

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64`.
    #[inline]
    #[must_use]
    fn add(self, bytes: u64) -> Self {
        Self::from_u64(self.as_u64() + bytes)
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other > self`.
    #[inline]
    fn offset_from(self, other: Self) -> u64 {
        self.as_u64() - other.as_u64()
    }

    /// Rounds the address down to a multiple of `align` (a power of two).
    #[inline]
    #[must_use]
    fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        Self::from_u64(self.as_u64() & !(align - 1))
    }

    /// Rounds the address up to a multiple of `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if rounding up overflows `u64`.
    #[inline]
    #[must_use]
    fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        Self::from_u64((self.as_u64() + align - 1) & !(align - 1))
    }

    /// Whether the address is a multiple of the given page size.
    #[inline]
    fn is_aligned(self, size: crate::PageSize) -> bool {
        self.as_u64() % size.bytes() == 0
    }
}

macro_rules! define_address {
    ($(#[$meta:meta])* $name:ident, $space:literal) => {
        $(#[$meta])*
        #[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates a new address from a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The zero address of this space.
            pub const ZERO: Self = Self(0);

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the addition overflows `u64`.
            #[inline]
            #[must_use]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Returns the address advanced by `bytes`, checking for
            /// overflow.
            #[inline]
            pub const fn checked_add(self, bytes: u64) -> Option<Self> {
                match self.0.checked_add(bytes) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Returns the address moved back by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the subtraction underflows.
            #[inline]
            #[must_use]
            pub const fn sub(self, bytes: u64) -> Self {
                Self(self.0 - bytes)
            }

            /// Byte distance from `other` to `self`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `other > self`.
            #[inline]
            pub const fn offset_from(self, other: Self) -> u64 {
                self.0 - other.0
            }

            /// Rounds the address down to a multiple of `align` (a power of
            /// two).
            #[inline]
            #[must_use]
            pub const fn align_down(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self(self.0 & !(align - 1))
            }

            /// Rounds the address up to a multiple of `align` (a power of
            /// two).
            ///
            /// # Panics
            ///
            /// Panics in debug builds if rounding up overflows `u64`.
            #[inline]
            #[must_use]
            pub const fn align_up(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self((self.0 + align - 1) & !(align - 1))
            }

            /// Whether the address is a multiple of the given page size.
            #[inline]
            pub const fn is_aligned(self, size: crate::PageSize) -> bool {
                self.0 % size.bytes() == 0
            }

            /// Offset of this address within its containing page of the
            /// given size.
            #[inline]
            pub const fn page_offset(self, size: crate::PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }
        }

        impl private::Sealed for $name {}

        impl Address for $name {
            const SPACE: &'static str = $space;

            #[inline]
            fn from_u64(raw: u64) -> Self {
                Self::new(raw)
            }

            #[inline]
            fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($space, "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

define_address!(
    /// A guest virtual address — what guest applications issue.
    Gva,
    "gVA"
);
define_address!(
    /// A guest physical address — what the guest OS manages as "RAM".
    Gpa,
    "gPA"
);
define_address!(
    /// A host physical address — actual machine memory.
    Hpa,
    "hPA"
);
define_address!(
    /// A host virtual address — the VMM process's own address space.
    Hva,
    "hVA"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageSize;

    #[test]
    fn constructs_and_extracts_raw_value() {
        let a = Gva::new(0xdead_beef);
        assert_eq!(a.as_u64(), 0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(Gpa::from_u64(7).as_u64(), 7);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Hpa::new(0x1000);
        assert_eq!(a.add(0x234).as_u64(), 0x1234);
        assert_eq!(a.add(0x234).sub(0x234), a);
        assert_eq!(a.add(0x234).offset_from(a), 0x234);
        assert_eq!(a.checked_add(u64::MAX), None);
        assert_eq!(a.checked_add(1), Some(Hpa::new(0x1001)));
    }

    #[test]
    fn alignment_helpers() {
        let a = Gva::new(0x1234);
        assert_eq!(a.align_down(0x1000), Gva::new(0x1000));
        assert_eq!(a.align_up(0x1000), Gva::new(0x2000));
        assert!(Gva::new(0x2000).is_aligned(PageSize::Size4K));
        assert!(!a.is_aligned(PageSize::Size4K));
        assert_eq!(a.page_offset(PageSize::Size4K), 0x234);
        assert_eq!(a.page_offset(PageSize::Size2M), 0x1234);
    }

    #[test]
    fn align_of_aligned_address_is_identity() {
        let a = Gpa::new(0x20_0000);
        assert_eq!(a.align_down(0x20_0000), a);
        assert_eq!(a.align_up(0x20_0000), a);
    }

    #[test]
    fn debug_names_the_space() {
        assert_eq!(format!("{:?}", Gva::new(0x10)), "gVA(0x10)");
        assert_eq!(format!("{:?}", Hpa::new(0x10)), "hPA(0x10)");
        assert_eq!(format!("{}", Hva::new(0x10)), "0x10");
        assert_eq!(format!("{:x}", Gpa::new(0xAB)), "ab");
        assert_eq!(format!("{:X}", Gpa::new(0xab)), "AB");
    }

    #[test]
    fn ordering_and_default() {
        assert!(Gva::new(1) < Gva::new(2));
        assert_eq!(Gva::default(), Gva::ZERO);
    }

    #[test]
    fn address_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gva>();
        assert_send_sync::<Gpa>();
        assert_send_sync::<Hpa>();
        assert_send_sync::<Hva>();
    }
}
