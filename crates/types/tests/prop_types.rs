//! Property-based tests for the foundation types.

use mv_types::{AddrRange, Gva, PageNum, PageSize, Prot};
use proptest::prelude::*;

proptest! {
    /// align_down is idempotent, never increases, and yields aligned values.
    #[test]
    fn align_down_properties(raw in any::<u64>(), shift in 12u32..=30) {
        let align = 1u64 << shift;
        let a = Gva::new(raw);
        let down = a.align_down(align);
        prop_assert!(down.as_u64() <= raw);
        prop_assert_eq!(down.as_u64() % align, 0);
        prop_assert_eq!(down.align_down(align), down);
        prop_assert!(raw - down.as_u64() < align);
    }

    /// align_up is idempotent, never decreases, and yields aligned values.
    #[test]
    fn align_up_properties(raw in 0u64..(1 << 48), shift in 12u32..=30) {
        let align = 1u64 << shift;
        let a = Gva::new(raw);
        let up = a.align_up(align);
        prop_assert!(up.as_u64() >= raw);
        prop_assert_eq!(up.as_u64() % align, 0);
        prop_assert_eq!(up.align_up(align), up);
        prop_assert!(up.as_u64() - raw < align);
    }

    /// A page number round-trips through its base address.
    #[test]
    fn page_num_round_trip(raw in any::<u64>()) {
        let a = Gva::new(raw & !0xfff);
        let pn = PageNum::containing(a);
        prop_assert_eq!(pn.base(), a);
    }

    /// Range intersection is commutative and contained in both operands.
    #[test]
    fn intersection_properties(
        (s1, e1) in (0u64..1 << 40).prop_flat_map(|s| (Just(s), s..1 << 40)),
        (s2, e2) in (0u64..1 << 40).prop_flat_map(|s| (Just(s), s..1 << 40)),
    ) {
        let a = AddrRange::new(Gva::new(s1), Gva::new(e1));
        let b = AddrRange::new(Gva::new(s2), Gva::new(e2));
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(a.contains_range(&i));
            prop_assert!(b.contains_range(&i));
            prop_assert!(!i.is_empty());
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }

    /// Every page yielded by pages() lies in the range and is aligned.
    #[test]
    fn pages_iterator_properties(
        start in 0u64..1 << 30,
        len in 0u64..1 << 24,
        size_idx in 0usize..2,
    ) {
        let size = PageSize::ALL[size_idx];
        let r = AddrRange::from_start_len(Gva::new(start), len);
        for page in r.pages(size) {
            prop_assert!(page.is_aligned(size));
            prop_assert!(r.contains(page));
            prop_assert!(page.as_u64() + size.bytes() <= r.end().as_u64());
        }
    }

    /// Prot bit operations respect set semantics.
    #[test]
    fn prot_set_semantics(a in 0u8..8, b in 0u8..8) {
        let pa = Prot::from_bits_truncate(a);
        let pb = Prot::from_bits_truncate(b);
        let union = pa | pb;
        prop_assert!(union.contains(pa));
        prop_assert!(union.contains(pb));
        let inter = pa & pb;
        prop_assert!(pa.contains(inter));
        prop_assert!(pb.contains(inter));
    }
}
