//! Property-based tests for the foundation types, driven by the
//! workspace's internal deterministic RNG (no external test deps).

use mv_types::rng::{Rng, StdRng};
use mv_types::{AddrRange, Gva, PageNum, PageSize, Prot};

const CASES: u64 = 512;

/// align_down is idempotent, never increases, and yields aligned values.
#[test]
fn align_down_properties() {
    let mut rng = StdRng::seed_from_u64(0xa11a1);
    for case in 0..CASES {
        let raw = rng.next_word();
        let shift = rng.gen_range(12u32..31);
        let align = 1u64 << shift;
        let a = Gva::new(raw);
        let down = a.align_down(align);
        assert!(down.as_u64() <= raw, "case {case}: align_down increased");
        assert_eq!(down.as_u64() % align, 0, "case {case}: unaligned result");
        assert_eq!(down.align_down(align), down, "case {case}: not idempotent");
        assert!(raw - down.as_u64() < align, "case {case}: moved too far");
    }
}

/// align_up is idempotent, never decreases, and yields aligned values.
#[test]
fn align_up_properties() {
    let mut rng = StdRng::seed_from_u64(0xa11a2);
    for case in 0..CASES {
        let raw = rng.gen_range(0u64..1 << 48);
        let shift = rng.gen_range(12u32..31);
        let align = 1u64 << shift;
        let a = Gva::new(raw);
        let up = a.align_up(align);
        assert!(up.as_u64() >= raw, "case {case}: align_up decreased");
        assert_eq!(up.as_u64() % align, 0, "case {case}: unaligned result");
        assert_eq!(up.align_up(align), up, "case {case}: not idempotent");
        assert!(up.as_u64() - raw < align, "case {case}: moved too far");
    }
}

/// A page number round-trips through its base address.
#[test]
fn page_num_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xa11a3);
    for case in 0..CASES {
        let a = Gva::new(rng.next_word() & !0xfff);
        let pn = PageNum::containing(a);
        assert_eq!(pn.base(), a, "case {case}");
    }
}

/// Range intersection is commutative and contained in both operands.
#[test]
fn intersection_properties() {
    let mut rng = StdRng::seed_from_u64(0xa11a4);
    for case in 0..CASES {
        let s1 = rng.gen_range(0u64..1 << 40);
        let e1 = rng.gen_range(s1..1 << 40);
        let s2 = rng.gen_range(0u64..1 << 40);
        let e2 = rng.gen_range(s2..1 << 40);
        let a = AddrRange::new(Gva::new(s1), Gva::new(e1));
        let b = AddrRange::new(Gva::new(s2), Gva::new(e2));
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        assert_eq!(i1, i2, "case {case}: intersection not commutative");
        if let Some(i) = i1 {
            assert!(a.contains_range(&i), "case {case}");
            assert!(b.contains_range(&i), "case {case}");
            assert!(!i.is_empty(), "case {case}");
            assert!(a.overlaps(&b), "case {case}");
        } else {
            assert!(!a.overlaps(&b), "case {case}");
        }
    }
}

/// Every page yielded by pages() lies in the range and is aligned.
#[test]
fn pages_iterator_properties() {
    let mut rng = StdRng::seed_from_u64(0xa11a5);
    for case in 0..128 {
        let start = rng.gen_range(0u64..1 << 30);
        let len = rng.gen_range(0u64..1 << 24);
        let size = PageSize::ALL[rng.gen_range(0usize..2)];
        let r = AddrRange::from_start_len(Gva::new(start), len);
        for page in r.pages(size) {
            assert!(page.is_aligned(size), "case {case}");
            assert!(r.contains(page), "case {case}");
            assert!(page.as_u64() + size.bytes() <= r.end().as_u64(), "case {case}");
        }
    }
}

/// Prot bit operations respect set semantics.
#[test]
fn prot_set_semantics() {
    for a in 0u8..8 {
        for b in 0u8..8 {
            let pa = Prot::from_bits_truncate(a);
            let pb = Prot::from_bits_truncate(b);
            let union = pa | pb;
            assert!(union.contains(pa));
            assert!(union.contains(pb));
            let inter = pa & pb;
            assert!(pa.contains(inter));
            assert!(pb.contains(inter));
        }
    }
}
