//! Per-access attribution of walk cycles to the 2D grid of Figure 2.
//!
//! A 2D nested walk touches up to 24 memory references: each of the four
//! guest levels resolves its table pointer through the nested dimension
//! (up to four nested references) and then reads the guest entry itself
//! (one more), and the final data gPA goes through the nested dimension
//! once again. [`WalkAttr`] records, for the single L1 miss it describes,
//! how many references landed in each (guest step × nested level) cell and
//! how many modeled cycles each cell cost — plus the scalar "tiers" that
//! short-circuit or decorate a walk (L2 TLB hit, nested TLB hits, PWC
//! hits, segment bound checks).
//!
//! The struct is `Copy` and rides inside every [`crate::WalkEvent`], but it
//! is only *populated* when the attached observer asks for attribution
//! ([`crate::WalkObserver::wants_attribution`]); telemetry-only runs carry
//! the all-zero default and export byte-identically to pre-attribution
//! output.

/// Guest-dimension steps: the four guest table levels plus the final data
/// reference (`gL4`, `gL3`, `gL2`, `gL1`, `data`).
pub const GUEST_ROWS: usize = 5;

/// Nested-dimension slots per guest step: the four nested table levels
/// plus the guest-dimension reference itself (`nL4`..`nL1`, `ref`).
pub const NESTED_COLS: usize = 5;

/// Column index of the guest-dimension (or native) reference itself.
pub const REF_COL: usize = 4;

/// Row labels, indexed by guest step (level 4 first, data last).
pub const ROW_LABELS: [&str; GUEST_ROWS] = ["gL4", "gL3", "gL2", "gL1", "data"];

/// Column labels, indexed by nested slot (level 4 first, `ref` last).
pub const COL_LABELS: [&str; NESTED_COLS] = ["nL4", "nL3", "nL2", "nL1", "ref"];

/// Middle-dimension slots per guest step for 3-level (L2) translation:
/// the four mid-layer (L1-hypervisor) table levels. The mid dimension has
/// no `ref` column of its own — a mid table entry read is itself resolved
/// through the host dimension and lands in the 5×5 grid's `ref` column.
pub const MID_COLS: usize = 4;

/// Mid-dimension column labels (level 4 first).
pub const MID_LABELS: [&str; MID_COLS] = ["mL4", "mL3", "mL2", "mL1"];

/// Cycle-and-reference attribution for one L1 miss.
///
/// Cells are `u32`: a single access's walk touches at most a few dozen
/// references and a few thousand cycles even on a long fault-retry chain,
/// and every add saturates, matching the histogram overflow discipline.
///
/// Conservation invariant (checked by `mv-core`'s unit tests): when the
/// MMU populates an attribution, the sum of all cell cycles plus all tier
/// cycles equals the event's `cycles` field exactly — including faulted
/// partial walks, since every charging site in the walker is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkAttr {
    /// Memory references per (guest step × nested slot) cell.
    pub refs: [[u32; NESTED_COLS]; GUEST_ROWS],
    /// Modeled cycles per (guest step × nested slot) cell.
    pub cycles: [[u32; NESTED_COLS]; GUEST_ROWS],
    /// Mid-dimension (L1-hypervisor table) references per (guest step ×
    /// mid level) cell. All-zero except on 3-level (L2) walks, so 2-level
    /// exports and fixtures are untouched.
    pub mid_refs: [[u32; MID_COLS]; GUEST_ROWS],
    /// Mid-dimension cycles per (guest step × mid level) cell.
    pub mid_cycles: [[u32; MID_COLS]; GUEST_ROWS],
    /// Cycles spent on the L2 TLB hit path (no walk performed).
    pub l2_hit_cycles: u32,
    /// Cycles spent on nested-TLB hits inside the walk.
    pub nested_tlb_cycles: u32,
    /// Cycles spent on page-walk-cache hits (both dimensions' caches).
    pub pwc_cycles: u32,
    /// Cycles spent on segment bound checks (guest and VMM).
    pub bound_check_cycles: u32,
}

impl WalkAttr {
    /// Whether nothing has been recorded — the state of every event from
    /// an MMU whose observer did not request attribution.
    pub fn is_empty(&self) -> bool {
        *self == WalkAttr::default()
    }

    /// Records one memory reference in cell `(row, col)` costing `cycles`.
    #[inline]
    pub fn record(&mut self, row: usize, col: usize, cycles: u64) {
        self.refs[row][col] = self.refs[row][col].saturating_add(1);
        self.cycles[row][col] = self.cycles[row][col].saturating_add(clamp32(cycles));
    }

    /// Records one mid-dimension (L1-hypervisor table) entry read in cell
    /// `(row, mid level)` costing `cycles`. Only 3-level walks call this.
    #[inline]
    pub fn record_mid(&mut self, row: usize, col: usize, cycles: u64) {
        self.mid_refs[row][col] = self.mid_refs[row][col].saturating_add(1);
        self.mid_cycles[row][col] = self.mid_cycles[row][col].saturating_add(clamp32(cycles));
    }

    /// Whether any mid-dimension cell is populated (3-level walks only).
    pub fn has_mid(&self) -> bool {
        self.mid_refs.iter().flatten().any(|&r| r != 0)
            || self.mid_cycles.iter().flatten().any(|&c| c != 0)
    }

    /// Adds `cycles` to the L2-hit tier.
    #[inline]
    pub fn add_l2_hit(&mut self, cycles: u64) {
        self.l2_hit_cycles = self.l2_hit_cycles.saturating_add(clamp32(cycles));
    }

    /// Adds `cycles` to the nested-TLB-hit tier.
    #[inline]
    pub fn add_nested_tlb(&mut self, cycles: u64) {
        self.nested_tlb_cycles = self.nested_tlb_cycles.saturating_add(clamp32(cycles));
    }

    /// Adds `cycles` to the page-walk-cache tier.
    #[inline]
    pub fn add_pwc(&mut self, cycles: u64) {
        self.pwc_cycles = self.pwc_cycles.saturating_add(clamp32(cycles));
    }

    /// Adds `cycles` to the bound-check tier.
    #[inline]
    pub fn add_bound_check(&mut self, cycles: u64) {
        self.bound_check_cycles = self.bound_check_cycles.saturating_add(clamp32(cycles));
    }

    /// Total references recorded across all cells (mid cells included).
    pub fn total_refs(&self) -> u64 {
        self.refs
            .iter()
            .flatten()
            .chain(self.mid_refs.iter().flatten())
            .map(|&r| u64::from(r))
            .sum()
    }

    /// Total cycles recorded: all cells (mid included) plus all tiers.
    pub fn total_cycles(&self) -> u64 {
        let cells: u64 = self
            .cycles
            .iter()
            .flatten()
            .chain(self.mid_cycles.iter().flatten())
            .map(|&c| u64::from(c))
            .sum();
        cells
            + u64::from(self.l2_hit_cycles)
            + u64::from(self.nested_tlb_cycles)
            + u64::from(self.pwc_cycles)
            + u64::from(self.bound_check_cycles)
    }
}

#[inline]
fn clamp32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_totals_zero() {
        let a = WalkAttr::default();
        assert!(a.is_empty());
        assert_eq!(a.total_refs(), 0);
        assert_eq!(a.total_cycles(), 0);
    }

    #[test]
    fn record_accumulates_and_breaks_emptiness() {
        let mut a = WalkAttr::default();
        a.record(0, 2, 18); // gL4 × nL2
        a.record(0, REF_COL, 160); // gL4's own entry read
        a.record(4, 3, 1); // data × nL1
        a.add_l2_hit(7);
        a.add_pwc(2);
        assert!(!a.is_empty());
        assert_eq!(a.refs[0][2], 1);
        assert_eq!(a.cycles[0][REF_COL], 160);
        assert_eq!(a.total_refs(), 3);
        assert_eq!(a.total_cycles(), 18 + 160 + 1 + 7 + 2);
    }

    #[test]
    fn adds_saturate_instead_of_wrapping() {
        let mut a = WalkAttr::default();
        a.record(1, 1, u64::from(u32::MAX) + 500);
        assert_eq!(a.cycles[1][1], u32::MAX);
        a.record(1, 1, 10);
        assert_eq!(a.cycles[1][1], u32::MAX, "cell cycles saturate");
        assert_eq!(a.refs[1][1], 2, "refs still count");
        a.add_bound_check(u64::MAX);
        a.add_bound_check(1);
        assert_eq!(a.bound_check_cycles, u32::MAX);
    }

    #[test]
    fn labels_cover_the_grid() {
        assert_eq!(ROW_LABELS.len(), GUEST_ROWS);
        assert_eq!(COL_LABELS.len(), NESTED_COLS);
        assert_eq!(COL_LABELS[REF_COL], "ref");
        assert_eq!(ROW_LABELS[GUEST_ROWS - 1], "data");
        assert_eq!(MID_LABELS.len(), MID_COLS);
    }

    #[test]
    fn mid_cells_join_totals_and_emptiness() {
        let mut a = WalkAttr::default();
        assert!(!a.has_mid());
        a.record_mid(0, 3, 160); // gL4 × mL1
        a.record_mid(4, 0, 160); // data × mL4
        assert!(a.has_mid());
        assert!(!a.is_empty());
        assert_eq!(a.total_refs(), 2);
        assert_eq!(a.total_cycles(), 320);
        a.record(0, REF_COL, 10);
        assert_eq!(a.total_refs(), 3);
        assert_eq!(a.total_cycles(), 330);
    }
}
