//! The structured walk event and the observer hook.

use core::fmt;

use crate::attr::WalkAttr;

/// How a TLB-missing access was ultimately served — the dimensionality
/// vocabulary of the paper (0D bypass, 1D single-dimension walks, the full
/// 2D nested walk) plus the cache paths that short-circuit a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WalkClass {
    /// Served by the shared L2 TLB; no walk performed.
    L2Hit,
    /// Dual Direct's 0D path: both segment register sets, zero references.
    Bypass0d,
    /// The unvirtualized direct-segment path (Section III.D).
    DirectSegment,
    /// Guest Direct 1D: guest segment replaced the guest dimension.
    GuestSeg1d,
    /// VMM Direct 1D: VMM segment replaced the nested dimension.
    VmmSeg1d,
    /// Full 2D nested walk — both dimensions paged.
    Walk2d,
    /// Full 3D nested-nested walk — all three layers paged (L2
    /// virtualization with no direct segment collapsing a dimension).
    Walk3d,
    /// Native 1D walk (unvirtualized paging, shadow paging).
    Walk1d,
    /// The access faulted before a translation completed.
    Faulted,
}

impl WalkClass {
    /// All classes, in rendering order.
    pub const ALL: [WalkClass; 9] = [
        WalkClass::L2Hit,
        WalkClass::Bypass0d,
        WalkClass::DirectSegment,
        WalkClass::GuestSeg1d,
        WalkClass::VmmSeg1d,
        WalkClass::Walk2d,
        WalkClass::Walk3d,
        WalkClass::Walk1d,
        WalkClass::Faulted,
    ];

    /// Stable snake_case identifier used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            WalkClass::L2Hit => "l2_hit",
            WalkClass::Bypass0d => "bypass_0d",
            WalkClass::DirectSegment => "direct_segment",
            WalkClass::GuestSeg1d => "guest_seg_1d",
            WalkClass::VmmSeg1d => "vmm_seg_1d",
            WalkClass::Walk2d => "walk_2d",
            WalkClass::Walk3d => "walk_3d",
            WalkClass::Walk1d => "walk_1d",
            WalkClass::Faulted => "faulted",
        }
    }

    /// Index into a dense per-class counter array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for WalkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fault observed on the walk, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultKind {
    /// The translation completed.
    #[default]
    None,
    /// First dimension unmapped (guest page fault).
    GuestNotMapped,
    /// Second dimension unmapped (nested page fault).
    NestedNotMapped,
    /// Write hit a read-only leaf.
    WriteProtected,
    /// Middle dimension unmapped (the L1 hypervisor's table, on 3-level
    /// walks only). Last so existing per-kind indices stay stable.
    MidNotMapped,
}

impl FaultKind {
    /// Stable snake_case identifier used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::GuestNotMapped => "guest_not_mapped",
            FaultKind::NestedNotMapped => "nested_not_mapped",
            FaultKind::WriteProtected => "write_protected",
            FaultKind::MidNotMapped => "mid_not_mapped",
        }
    }
}

/// What the escape filter said about this access's segment candidacy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EscapeOutcome {
    /// No segment bound check ran on this path.
    #[default]
    NotChecked,
    /// A bound check ran and the filter let the segment serve the access.
    Passed,
    /// The filter flagged the address; it escaped back to paging.
    Escaped,
}

impl EscapeOutcome {
    /// Stable snake_case identifier used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            EscapeOutcome::NotChecked => "not_checked",
            EscapeOutcome::Passed => "passed",
            EscapeOutcome::Escaped => "escaped",
        }
    }
}

/// One structured TLB-miss event: everything the MMU knew about how an
/// L1-missing access was translated. Addresses are raw `u64` so this crate
/// stays dependency-free; the emitting layer owns the typed views.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkEvent {
    /// Access sequence number within the observed window (1-based).
    pub seq: u64,
    /// Guest virtual address of the access.
    pub gva: u64,
    /// Final guest-physical address of the first dimension, when a
    /// virtualized walk resolved one (`None` on L2 hits, bypasses, native
    /// walks, and first-dimension faults).
    pub gpa: Option<u64>,
    /// Translation-mode label of the emitting MMU.
    pub mode: &'static str,
    /// Path that served (or failed) the access.
    pub class: WalkClass,
    /// Whether the access was a write.
    pub write: bool,
    /// Translation cycles charged to this access.
    pub cycles: u64,
    /// Guest-dimension page-table references performed. Carried at the
    /// counters' full width: the value is a delta of two `u64` MMU
    /// counters, and one serviced access can legitimately accumulate a
    /// large delta (a long fault-retry chain re-walks both dimensions on
    /// every attempt), so narrowing here would silently truncate.
    pub guest_refs: u64,
    /// Nested-dimension page-table references performed (same width
    /// rationale as `guest_refs`).
    pub nested_refs: u64,
    /// Escape-filter outcome.
    pub escape: EscapeOutcome,
    /// Fault observed, if any.
    pub fault: FaultKind,
    /// Per-cell cycle attribution of the walk. All-zero (and absent from
    /// exports) unless the attached observer asked for attribution via
    /// [`WalkObserver::wants_attribution`].
    pub attr: WalkAttr,
}

/// Receiver for [`WalkEvent`]s, attached to an MMU.
///
/// The hook is invoked once per L1 TLB miss — never on L1 hits — so an
/// attached observer rides the already-expensive slow path, and a detached
/// one costs the emitting MMU a single branch.
pub trait WalkObserver: fmt::Debug {
    /// Called after each L1 miss has been fully serviced (or faulted).
    fn on_walk(&mut self, event: &WalkEvent);

    /// Whether this observer wants per-cell cycle attribution
    /// ([`WalkEvent::attr`]) populated. The MMU samples this once at
    /// attachment; when `false` (the default) the walker skips all
    /// attribution bookkeeping and every event carries the all-zero
    /// [`WalkAttr`], keeping telemetry-only exports byte-identical to
    /// pre-attribution output.
    fn wants_attribution(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_stable() {
        for (i, c) in WalkClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: std::collections::HashSet<_> =
            WalkClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), WalkClass::ALL.len(), "labels are unique");
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(WalkClass::Walk2d.to_string(), "walk_2d");
        assert_eq!(FaultKind::default().label(), "none");
        assert_eq!(EscapeOutcome::default().label(), "not_checked");
    }
}
