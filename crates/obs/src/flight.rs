//! Flight recorder: a bounded overwrite-ring of recent walk events.
//!
//! Where `mv_core::MissTrace` keeps the *first* `capacity` records and
//! drops the rest (a sampling buffer), the flight recorder keeps the *last*
//! `capacity` events — the black-box view: when something goes wrong at
//! event N, the events leading up to N are the ones worth having.

use crate::event::WalkEvent;

/// A ring buffer of the most recent [`WalkEvent`]s.
///
/// # Example
///
/// ```
/// use mv_obs::{EscapeOutcome, FaultKind, FlightRecorder, WalkClass, WalkEvent};
///
/// let mut fr = FlightRecorder::new(2);
/// for seq in 1..=5 {
///     fr.push(WalkEvent {
///         seq, gva: 0x1000 * seq, gpa: None, mode: "4K+4K",
///         class: WalkClass::Walk2d, write: false, cycles: 40,
///         guest_refs: 4, nested_refs: 20,
///         escape: EscapeOutcome::NotChecked, fault: FaultKind::None,
///         attr: Default::default(),
///     });
/// }
/// let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
/// assert_eq!(seqs, [4, 5], "only the most recent events survive");
/// assert_eq!(fr.overwritten(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    buf: Vec<WalkEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    overwritten: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events. A capacity of
    /// 0 records nothing: every push counts as overwritten.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            head: 0,
            overwritten: 0,
        }
    }

    /// Appends an event, evicting the oldest once full.
    pub fn push(&mut self, e: WalkEvent) {
        if self.capacity == 0 {
            self.overwritten += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Events in arrival order (oldest surviving first).
    pub fn events(&self) -> impl Iterator<Item = &WalkEvent> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the recorder holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the ring has reached capacity (subsequent pushes evict).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (or refused, for capacity 0) so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.buf.len() as u64 + self.overwritten
    }

    /// Empties the ring (capacity and overwritten count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EscapeOutcome, FaultKind, WalkClass};

    fn ev(seq: u64) -> WalkEvent {
        WalkEvent {
            seq,
            gva: seq * 0x1000,
            gpa: None,
            mode: "test",
            class: WalkClass::Walk2d,
            write: false,
            cycles: seq,
            guest_refs: 0,
            nested_refs: 0,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr: Default::default(),
        }
    }

    #[test]
    fn keeps_the_newest_events_in_order() {
        let mut fr = FlightRecorder::new(3);
        for s in 1..=7 {
            fr.push(ev(s));
        }
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [5, 6, 7]);
        assert_eq!(fr.overwritten(), 4);
        assert_eq!(fr.total(), 7);
        assert!(fr.is_full());
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut fr = FlightRecorder::new(8);
        for s in 1..=3 {
            fr.push(ev(s));
        }
        assert_eq!(fr.len(), 3);
        assert!(!fr.is_full());
        assert_eq!(fr.overwritten(), 0);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2, 3]);
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let mut fr = FlightRecorder::new(0);
        for s in 1..=4 {
            fr.push(ev(s));
        }
        assert!(fr.is_empty());
        assert!(fr.is_full(), "a zero-capacity ring is trivially full");
        assert_eq!(fr.overwritten(), 4);
        assert_eq!(fr.total(), 4);
    }

    #[test]
    fn clear_resets_contents_only() {
        let mut fr = FlightRecorder::new(2);
        for s in 1..=5 {
            fr.push(ev(s));
        }
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.overwritten(), 3, "history of evictions survives clear");
        fr.push(ev(9));
        assert_eq!(fr.events().map(|e| e.seq).collect::<Vec<_>>(), [9]);
    }
}
