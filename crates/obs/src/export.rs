//! Exporters: JSONL (events + epoch snapshots) and Prometheus-style text.
//!
//! Both are hand-rolled — the values are integers, floats, booleans, and
//! identifier-like strings, so no general serializer is needed. The JSONL
//! schema is documented in README.md's Observability section.

use std::io::{self, Write};

use crate::epoch::EpochSnapshot;
use crate::event::{WalkClass, WalkEvent};
use crate::hist::{LatencyHistogram, BUCKETS};
use crate::telemetry::Telemetry;

/// Escapes a string for a JSON value. Labels here are `snake_case`
/// identifiers, but the exporter stays correct for arbitrary input.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one walk event as a JSONL line (no trailing newline).
///
/// Attribution fields are appended only when the event carries a non-empty
/// [`crate::WalkAttr`] — events from telemetry-only runs render
/// byte-identically to pre-attribution output.
pub fn event_jsonl(e: &WalkEvent) -> String {
    let gpa = match e.gpa {
        Some(g) => format!("\"{g:#x}\""),
        None => "null".to_string(),
    };
    let mut line = format!(
        "{{\"type\":\"event\",\"seq\":{},\"gva\":\"{:#x}\",\"gpa\":{},\
         \"mode\":\"{}\",\"class\":\"{}\",\"write\":{},\"cycles\":{},\
         \"guest_refs\":{},\"nested_refs\":{},\"escape\":\"{}\",\"fault\":\"{}\"",
        e.seq,
        e.gva,
        gpa,
        json_escape(e.mode),
        e.class.label(),
        e.write,
        e.cycles,
        e.guest_refs,
        e.nested_refs,
        e.escape.label(),
        e.fault.label(),
    );
    if !e.attr.is_empty() {
        line.push_str(&format!(",\"attr\":{}", attr_json(&e.attr)));
    }
    line.push('}');
    line
}

/// Renders one [`crate::WalkAttr`] as a JSON object (cells and tiers).
/// The mid-dimension grids (3-level walks) are appended only when
/// populated, so 2-level exports render byte-identically to pre-L2 output.
pub fn attr_json(a: &crate::WalkAttr) -> String {
    fn rows_json<const N: usize>(m: &[[u32; N]; crate::GUEST_ROWS]) -> String {
        let rows: Vec<String> = m
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
    let mid = if a.has_mid() {
        format!(
            ",\"mid_refs\":{},\"mid_cycles\":{}",
            rows_json(&a.mid_refs),
            rows_json(&a.mid_cycles)
        )
    } else {
        String::new()
    };
    format!(
        "{{\"refs\":{},\"cycles\":{}{mid},\"tiers\":{{\"l2_hit\":{},\
         \"nested_tlb\":{},\"pwc\":{},\"bound_check\":{}}}}}",
        rows_json(&a.refs),
        rows_json(&a.cycles),
        a.l2_hit_cycles,
        a.nested_tlb_cycles,
        a.pwc_cycles,
        a.bound_check_cycles,
    )
}

/// Renders one epoch snapshot as a JSONL line (no trailing newline).
pub fn epoch_jsonl(s: &EpochSnapshot) -> String {
    let classes: Vec<String> = WalkClass::ALL
        .iter()
        .filter(|c| s.class_counts[c.index()] > 0)
        .map(|c| format!("\"{}\":{}", c.label(), s.class_counts[c.index()]))
        .collect();
    format!(
        "{{\"type\":\"epoch\",\"index\":{},\"start_seq\":{},\"end_seq\":{},\
         \"events\":{},\"mpka\":{:.3},\"cycles_sum\":{},\"cycles_per_miss\":{:.3},\
         \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\
         \"faults\":{},\"escapes\":{},\"classes\":{{{}}}}}",
        s.index,
        s.start_seq,
        s.end_seq,
        s.events,
        s.mpka(),
        s.hist.sum(),
        s.cycles_per_miss(),
        s.hist.percentile(0.50),
        s.hist.percentile(0.95),
        s.hist.percentile(0.99),
        s.hist.max(),
        s.faults,
        s.escapes,
        classes.join(","),
    )
}

impl Telemetry {
    /// Writes the full telemetry as JSONL: a `meta` line, one `epoch` line
    /// per snapshot, one `transition` line per recorded degradation
    /// transition (chaos runs only), one `event` line per flight-recorder
    /// entry, and a final `summary` line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"meta\",\"epoch_len\":{},\"flight_capacity\":{}}}",
            self.config().epoch_len,
            self.config().flight_capacity,
        )?;
        for s in self.epochs() {
            writeln!(w, "{}", epoch_jsonl(s))?;
        }
        // Transition lines only appear on chaos runs; chaos-free exports are
        // byte-identical to pre-chaos output.
        for t in self.transitions() {
            writeln!(
                w,
                "{{\"type\":\"transition\",\"access\":{},\"from\":\"{}\",\
                 \"to\":\"{}\",\"cause\":\"{}\"}}",
                t.access,
                json_escape(&t.from),
                json_escape(&t.to),
                json_escape(&t.cause),
            )?;
        }
        for e in self.flight().events() {
            writeln!(w, "{}", event_jsonl(e))?;
        }
        let h = self.hist();
        writeln!(
            w,
            "{{\"type\":\"summary\",\"events\":{},\"cycles_sum\":{},\
             \"cycles_per_miss\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\
             \"epochs\":{},\"flight_kept\":{},\"flight_overwritten\":{}}}",
            self.events(),
            h.sum(),
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max(),
            self.epochs().len(),
            self.flight().len(),
            self.flight().overwritten(),
        )
    }

    /// Renders the final counters in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` comments, `name{labels} value` samples). `labels`
    /// are attached to every sample — pass run identity like
    /// `[("workload", "gups"), ("config", "4K+4K")]`.
    pub fn prometheus(&self, labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        let with = |extra: &[(&str, String)]| -> String {
            let mut parts: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
                .collect();
            parts.extend(
                extra
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v))),
            );
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };

        out.push_str("# HELP mv_walk_events_total TLB-miss walk events observed.\n");
        out.push_str("# TYPE mv_walk_events_total counter\n");
        out.push_str(&format!(
            "mv_walk_events_total{} {}\n",
            with(&[]),
            self.events()
        ));

        out.push_str("# HELP mv_walk_class_total Walk events by translation path.\n");
        out.push_str("# TYPE mv_walk_class_total counter\n");
        for c in WalkClass::ALL {
            out.push_str(&format!(
                "mv_walk_class_total{} {}\n",
                with(&[("class", c.label().to_string())]),
                self.class_count(c)
            ));
        }

        out.push_str("# HELP mv_walk_faults_total Walk events that faulted, by kind.\n");
        out.push_str("# TYPE mv_walk_faults_total counter\n");
        for (kind, label) in [
            (crate::FaultKind::GuestNotMapped, "guest_not_mapped"),
            (crate::FaultKind::NestedNotMapped, "nested_not_mapped"),
            (crate::FaultKind::WriteProtected, "write_protected"),
            (crate::FaultKind::MidNotMapped, "mid_not_mapped"),
        ] {
            out.push_str(&format!(
                "mv_walk_faults_total{} {}\n",
                with(&[("kind", label.to_string())]),
                self.fault_count(kind)
            ));
        }

        out.push_str("# HELP mv_escape_total Escape-filter outcomes on segment checks.\n");
        out.push_str("# TYPE mv_escape_total counter\n");
        for (o, label) in [
            (crate::EscapeOutcome::Passed, "passed"),
            (crate::EscapeOutcome::Escaped, "escaped"),
        ] {
            out.push_str(&format!(
                "mv_escape_total{} {}\n",
                with(&[("outcome", label.to_string())]),
                self.escape_count(o)
            ));
        }

        out.push_str(
            "# HELP mv_walk_cycles Translation cycles charged per TLB miss.\n",
        );
        out.push_str("# TYPE mv_walk_cycles histogram\n");
        out.push_str(&prometheus_histogram("mv_walk_cycles", self.hist(), &with));

        out.push_str("# HELP mv_flight_overwritten_total Flight-recorder events evicted.\n");
        out.push_str("# TYPE mv_flight_overwritten_total counter\n");
        out.push_str(&format!(
            "mv_flight_overwritten_total{} {}\n",
            with(&[]),
            self.flight().overwritten()
        ));
        out
    }
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a `{label="value",...}` sample suffix from extra labels.
type LabelRenderer<'a> = &'a dyn Fn(&[(&str, String)]) -> String;

/// Renders one histogram in Prometheus exposition form (cumulative
/// `_bucket{le=...}` samples plus `_sum` and `_count`).
fn prometheus_histogram(name: &str, h: &LatencyHistogram, with: LabelRenderer<'_>) -> String {
    let mut out = String::new();
    let mut cumulative = 0u64;
    for (i, &c) in h.counts().iter().enumerate() {
        cumulative += c;
        // Skip interior empty buckets past the data to keep output small,
        // but always emit buckets that advance the cumulative count.
        if c == 0 && i != 0 && i != BUCKETS - 1 {
            continue;
        }
        let le = if i == BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            LatencyHistogram::bucket_bound(i).to_string()
        };
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            with(&[("le", le)])
        ));
    }
    out.push_str(&format!("{name}_sum{} {}\n", with(&[]), h.sum()));
    out.push_str(&format!("{name}_count{} {}\n", with(&[]), h.count()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EscapeOutcome, FaultKind, WalkObserver};
    use crate::telemetry::TelemetryConfig;

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 10,
            flight_capacity: 2,
        });
        for s in 1..=25u64 {
            t.on_walk(&WalkEvent {
                seq: s,
                gva: 0x1000 * s,
                gpa: (s % 2 == 0).then_some(0x2000 * s),
                mode: "4K+4K",
                class: if s % 5 == 0 {
                    WalkClass::L2Hit
                } else {
                    WalkClass::Walk2d
                },
                write: s % 3 == 0,
                cycles: 40 + s,
                guest_refs: 4,
                nested_refs: 20,
                escape: EscapeOutcome::NotChecked,
                fault: FaultKind::None,
                attr: Default::default(),
            });
        }
        t.finish(25);
        t
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let t = sample_telemetry();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + 3 epochs + 2 flight events + summary.
        assert_eq!(lines.len(), 1 + 3 + 2 + 1);
        for line in &lines {
            assert!(line.starts_with("{\"type\":\""), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "balanced braces: {line}"
            );
        }
        assert!(lines[0].contains("\"epoch_len\":10"));
        assert!(lines[1].contains("\"type\":\"epoch\""));
        assert!(text.contains("\"type\":\"summary\""));
    }

    #[test]
    fn transition_lines_ride_between_epochs_and_events() {
        let mut t = sample_telemetry();
        t.record_transitions(&[crate::TransitionRecord {
            access: 120,
            from: "direct".into(),
            to: "paging".into(),
            cause: "segment_alloc_fail".into(),
        }]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3 + 1 + 2 + 1);
        assert_eq!(
            lines[4],
            "{\"type\":\"transition\",\"access\":120,\"from\":\"direct\",\
             \"to\":\"paging\",\"cause\":\"segment_alloc_fail\"}"
        );
        assert!(lines[3].contains("\"type\":\"epoch\""));
        assert!(lines[5].contains("\"type\":\"event\""));
    }

    #[test]
    fn event_json_renders_null_gpa() {
        let e = WalkEvent {
            seq: 1,
            gva: 0x1000,
            gpa: None,
            mode: "native",
            class: WalkClass::Walk1d,
            write: false,
            cycles: 30,
            guest_refs: 4,
            nested_refs: 0,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr: Default::default(),
        };
        let s = event_jsonl(&e);
        assert!(s.contains("\"gpa\":null"));
        assert!(s.contains("\"gva\":\"0x1000\""));
    }

    #[test]
    fn empty_attr_renders_the_exact_pre_attribution_line() {
        // Byte-identity pin: an event whose WalkAttr is all-zero must render
        // exactly as it did before attribution existed — this is what keeps
        // the machine_equiv golden fixture (and every telemetry-only JSONL
        // export) stable across the profiler's introduction.
        let e = WalkEvent {
            seq: 7,
            gva: 0x7000,
            gpa: Some(0x2000),
            mode: "4K+4K",
            write: true,
            class: WalkClass::Walk2d,
            cycles: 44,
            guest_refs: 4,
            nested_refs: 20,
            escape: EscapeOutcome::Passed,
            fault: FaultKind::None,
            attr: Default::default(),
        };
        assert_eq!(
            event_jsonl(&e),
            "{\"type\":\"event\",\"seq\":7,\"gva\":\"0x7000\",\"gpa\":\"0x2000\",\
             \"mode\":\"4K+4K\",\"class\":\"walk_2d\",\"write\":true,\"cycles\":44,\
             \"guest_refs\":4,\"nested_refs\":20,\"escape\":\"passed\",\"fault\":\"none\"}"
        );
    }

    #[test]
    fn populated_attr_appends_an_attr_object() {
        let mut attr = crate::WalkAttr::default();
        attr.record(0, 1, 18); // gL4 × nL3
        attr.record(4, crate::REF_COL, 160);
        attr.add_pwc(2);
        let e = WalkEvent {
            seq: 1,
            gva: 0x1000,
            gpa: None,
            mode: "4K+4K",
            class: WalkClass::Walk2d,
            write: false,
            cycles: 180,
            guest_refs: 1,
            nested_refs: 1,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr,
        };
        let s = event_jsonl(&e);
        assert!(s.contains("\"attr\":{\"refs\":[[0,1,0,0,0]"), "line: {s}");
        assert!(s.contains("\"tiers\":{\"l2_hit\":0,\"nested_tlb\":0,\"pwc\":2,\"bound_check\":0}"));
        assert!(s.ends_with("}}}"), "attr object closes the line: {s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn event_json_ref_counts_above_u32_are_lossless() {
        // Companion to the MMU-side truncation regression test: the event
        // fields are u64 end to end, so a delta above u32::MAX must
        // round-trip through the JSONL rendering unclipped.
        let huge = u64::from(u32::MAX) + 77;
        let e = WalkEvent {
            seq: 1,
            gva: 0x1000,
            gpa: None,
            mode: "4K+4K",
            class: WalkClass::Walk2d,
            write: false,
            cycles: 3 * huge,
            guest_refs: huge,
            nested_refs: 2 * huge,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr: Default::default(),
        };
        let s = event_jsonl(&e);
        assert!(s.contains(&format!("\"guest_refs\":{huge}")), "line: {s}");
        assert!(s.contains(&format!("\"nested_refs\":{}", 2 * huge)));
        assert!(s.contains(&format!("\"cycles\":{}", 3 * huge)));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let t = sample_telemetry();
        let text = t.prometheus(&[("workload", "gups"), ("config", "4K+4K")]);
        assert!(text.contains("# TYPE mv_walk_events_total counter"));
        assert!(text
            .contains("mv_walk_events_total{workload=\"gups\",config=\"4K+4K\"} 25"));
        assert!(text.contains("class=\"walk_2d\"} 20"));
        assert!(text.contains("class=\"l2_hit\"} 5"));
        // Histogram: +Inf bucket equals the count, sum matches.
        assert!(text.contains("le=\"+Inf\"} 25"));
        assert!(text.contains(&format!("mv_walk_cycles_sum{{workload=\"gups\",config=\"4K+4K\"}} {}", t.hist().sum())));
        // Every non-comment line is `name{...} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_labels, value) = line.rsplit_once(' ').unwrap();
            assert!(!name_labels.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "value parses: {line}"
            );
        }
    }

    #[test]
    fn prometheus_cumulative_buckets_are_monotone() {
        let t = sample_telemetry();
        let text = t.prometheus(&[]);
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("mv_walk_cycles_bucket")) {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= last, "cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 25);
    }
}
