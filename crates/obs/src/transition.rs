//! Mode/degradation-state transition records.
//!
//! Chaos and adaptive runs move a direct-segment environment between
//! translation modes (Direct → escape-heavy → paging and back, per layer).
//! Those transitions are rare, run-level events — not per-miss walk events
//! — so they ride alongside the epoch stream as their own record type
//! rather than polluting the [`crate::WalkClass`] counters and histograms
//! that the golden fixtures pin down.

/// One mode transition, stamped with the access index at which it fired.
///
/// Levels and causes are owned labels so producers can record composite
/// per-layer plans (e.g. `"escape_heavy/direct"`) as well as the classic
/// single-level vocabulary; this crate stays free of a dependency on the
/// chaos layer, and the producer (the simulation driver) guarantees stable
/// vocabulary (`"direct"`, `"escape_heavy"`, `"paging"`, per-layer
/// `/`-joined plans, and fault labels, `"promotion"`, `"rollback"`, or
/// `"recovery"` for the cause).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Access index at which the transition happened.
    pub access: u64,
    /// Mode before the transition.
    pub from: String,
    /// Mode after the transition.
    pub to: String,
    /// What caused it (an injected-fault label, `"promotion"`,
    /// `"rollback"`, or `"recovery"`).
    pub cause: String,
}
