//! Degradation-state transition records.
//!
//! Chaos runs move a direct-segment environment between degradation levels
//! (Direct → escape-heavy → paging and back). Those transitions are rare,
//! run-level events — not per-miss walk events — so they ride alongside the
//! epoch stream as their own record type rather than polluting the
//! [`crate::WalkClass`] counters and histograms that the golden fixtures
//! pin down.

/// One degradation-state transition, stamped with the access index at
/// which it fired.
///
/// Levels and causes are plain static labels so this crate stays free of a
/// dependency on the chaos layer; the producer (the simulation driver)
/// guarantees stable vocabulary (`"direct"`, `"escape_heavy"`, `"paging"`,
/// and fault labels or `"recovery"` for the cause).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Access index at which the transition happened.
    pub access: u64,
    /// Level before the transition.
    pub from: &'static str,
    /// Level after the transition.
    pub to: &'static str,
    /// What caused it (an injected-fault label, or `"recovery"`).
    pub cause: &'static str,
}
