//! Periodic telemetry snapshots.

use crate::event::WalkClass;
use crate::hist::LatencyHistogram;

/// Telemetry aggregated over one epoch (a fixed-length window of accesses).
///
/// Epochs are keyed by access sequence number, not by event count, so a
/// quiet epoch (few TLB misses) and a stormy one cover the same amount of
/// simulated work and their rates are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch index (0-based).
    pub index: u64,
    /// First access sequence number the epoch covers (1-based, inclusive).
    pub start_seq: u64,
    /// Last access sequence number the epoch covers (inclusive). For the
    /// trailing partial epoch this is the run's final access.
    pub end_seq: u64,
    /// Walk events (L1 misses) observed in the epoch.
    pub events: u64,
    /// Per-[`WalkClass`] event counts (indexed by [`WalkClass::index`]).
    pub class_counts: [u64; WalkClass::ALL.len()],
    /// Faults observed (any kind).
    pub faults: u64,
    /// Escape-filter escapes observed.
    pub escapes: u64,
    /// Latency histogram of the epoch's events.
    pub hist: LatencyHistogram,
}

impl EpochSnapshot {
    /// Accesses the epoch spans.
    pub fn span(&self) -> u64 {
        self.end_seq.saturating_sub(self.start_seq) + 1
    }

    /// TLB misses per thousand accesses within the epoch.
    pub fn mpka(&self) -> f64 {
        if self.span() == 0 {
            0.0
        } else {
            1000.0 * self.events as f64 / self.span() as f64
        }
    }

    /// Mean translation cycles per miss within the epoch.
    pub fn cycles_per_miss(&self) -> f64 {
        self.hist.mean()
    }

    /// Folds another snapshot of the **same epoch index** into this one
    /// (used when merging telemetry from parallel runs that each covered
    /// the same access window). Counts add, the latency histograms merge,
    /// and the covered span becomes the union of both spans. Commutative
    /// and associative, like [`LatencyHistogram::merge`].
    ///
    /// # Panics
    ///
    /// Panics if the epoch indices differ — merging different windows
    /// would silently corrupt per-epoch rates.
    pub fn merge(&mut self, other: &EpochSnapshot) {
        assert_eq!(
            self.index, other.index,
            "merged snapshots must cover the same epoch"
        );
        self.start_seq = self.start_seq.min(other.start_seq);
        self.end_seq = self.end_seq.max(other.end_seq);
        self.events += other.events;
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts.iter()) {
            *a += b;
        }
        self.faults += other.faults;
        self.escapes += other.escapes;
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut hist = LatencyHistogram::new();
        hist.record(10);
        hist.record(30);
        let s = EpochSnapshot {
            index: 0,
            start_seq: 1,
            end_seq: 1000,
            events: 2,
            class_counts: [0; WalkClass::ALL.len()],
            faults: 0,
            escapes: 0,
            hist,
        };
        assert_eq!(s.span(), 1000);
        assert!((s.mpka() - 2.0).abs() < 1e-12);
        assert!((s.cycles_per_miss() - 20.0).abs() < 1e-12);
    }
}
