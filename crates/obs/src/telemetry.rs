//! The telemetry aggregator: one observer that feeds histograms, epoch
//! snapshots, and the flight recorder.

use std::cell::RefCell;
use std::rc::Rc;

use crate::epoch::EpochSnapshot;
use crate::event::{EscapeOutcome, FaultKind, WalkClass, WalkEvent, WalkObserver};
use crate::flight::FlightRecorder;
use crate::hist::LatencyHistogram;

/// Configuration for a [`Telemetry`] collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Accesses per epoch snapshot; 0 disables epoch collection (only the
    /// run-total aggregates are kept).
    pub epoch_len: u64,
    /// Flight-recorder capacity in events; 0 disables event retention.
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_len: 10_000,
            flight_capacity: 0,
        }
    }
}

/// Run-level telemetry: cumulative latency histogram and per-class /
/// per-fault / per-escape counters, plus periodic [`EpochSnapshot`]s and an
/// optional [`FlightRecorder`] of recent events.
///
/// Implements [`WalkObserver`] directly; use [`SharedTelemetry`] when the
/// collector must outlive the observer attachment (the usual case — the
/// MMU owns the observer box while the harness wants the data afterward).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    hist: LatencyHistogram,
    class_counts: [u64; WalkClass::ALL.len()],
    fault_counts: [u64; 4],
    escape_counts: [u64; 3],
    events: u64,
    last_seq: u64,
    epochs: Vec<EpochSnapshot>,
    cur: Option<EpochAccum>,
    flight: FlightRecorder,
    finished: bool,
}

/// In-progress epoch.
#[derive(Debug, Clone)]
struct EpochAccum {
    index: u64,
    events: u64,
    class_counts: [u64; WalkClass::ALL.len()],
    faults: u64,
    escapes: u64,
    hist: LatencyHistogram,
}

impl EpochAccum {
    fn new(index: u64) -> Self {
        EpochAccum {
            index,
            events: 0,
            class_counts: [0; WalkClass::ALL.len()],
            faults: 0,
            escapes: 0,
            hist: LatencyHistogram::new(),
        }
    }

    fn snapshot(&self, epoch_len: u64, end_seq: u64) -> EpochSnapshot {
        EpochSnapshot {
            index: self.index,
            start_seq: self.index * epoch_len + 1,
            end_seq,
            events: self.events,
            class_counts: self.class_counts,
            faults: self.faults,
            escapes: self.escapes,
            hist: self.hist,
        }
    }
}

impl Telemetry {
    /// Creates an empty collector.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            flight: FlightRecorder::new(cfg.flight_capacity),
            cfg,
            ..Telemetry::default()
        }
    }

    /// The configuration the collector was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Cumulative latency histogram over all observed events.
    pub fn hist(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Total walk events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events observed for one [`WalkClass`].
    pub fn class_count(&self, class: WalkClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Events observed for one [`FaultKind`] (including `FaultKind::None`).
    pub fn fault_count(&self, fault: FaultKind) -> u64 {
        self.fault_counts[fault as usize]
    }

    /// Events observed for one [`EscapeOutcome`].
    pub fn escape_count(&self, escape: EscapeOutcome) -> u64 {
        self.escape_counts[escape as usize]
    }

    /// Completed epoch snapshots (includes the trailing partial epoch once
    /// [`Telemetry::finish`] has run).
    pub fn epochs(&self) -> &[EpochSnapshot] {
        &self.epochs
    }

    /// The flight recorder of recent events.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Closes the collector at `total_accesses` accesses, flushing the
    /// trailing partial epoch (if it saw any events). Idempotent.
    pub fn finish(&mut self, total_accesses: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(cur) = self.cur.take() {
            let end = total_accesses.max(self.last_seq);
            self.epochs.push(cur.snapshot(self.cfg.epoch_len, end));
        }
    }
}

impl WalkObserver for Telemetry {
    fn on_walk(&mut self, e: &WalkEvent) {
        self.events += 1;
        self.last_seq = e.seq;
        self.hist.record(e.cycles);
        self.class_counts[e.class.index()] += 1;
        self.fault_counts[e.fault as usize] += 1;
        self.escape_counts[e.escape as usize] += 1;

        if let Some(epoch) = e.seq.saturating_sub(1).checked_div(self.cfg.epoch_len) {
            match &self.cur {
                Some(cur) if cur.index != epoch => {
                    let cur = self.cur.take().expect("matched Some");
                    let end = (cur.index + 1) * self.cfg.epoch_len;
                    self.epochs.push(cur.snapshot(self.cfg.epoch_len, end));
                    self.cur = Some(EpochAccum::new(epoch));
                }
                None => self.cur = Some(EpochAccum::new(epoch)),
                Some(_) => {}
            }
            let cur = self.cur.as_mut().expect("just ensured");
            cur.events += 1;
            cur.class_counts[e.class.index()] += 1;
            if e.fault != FaultKind::None {
                cur.faults += 1;
            }
            if e.escape == EscapeOutcome::Escaped {
                cur.escapes += 1;
            }
            cur.hist.record(e.cycles);
        }

        if self.cfg.flight_capacity > 0 {
            self.flight.push(*e);
        }
    }
}

/// A clonable handle to a [`Telemetry`] collector.
///
/// The attachment side hands a boxed clone to the MMU ([`SharedTelemetry::observer`])
/// while keeping its own handle; after the run, [`SharedTelemetry::take`]
/// recovers the collected data without any downcasting.
///
/// # Example
///
/// ```
/// use mv_obs::{SharedTelemetry, TelemetryConfig, WalkObserver};
///
/// let shared = SharedTelemetry::new(TelemetryConfig::default());
/// let mut observer = shared.observer();
/// // ... attach `observer` to an MMU and run ...
/// drop(observer);
/// let telemetry = shared.take(123);
/// assert_eq!(telemetry.events(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedTelemetry(Rc<RefCell<Telemetry>>);

impl SharedTelemetry {
    /// Creates a fresh collector behind a shared handle.
    pub fn new(cfg: TelemetryConfig) -> Self {
        SharedTelemetry(Rc::new(RefCell::new(Telemetry::new(cfg))))
    }

    /// A boxed observer feeding this handle's collector.
    pub fn observer(&self) -> Box<dyn WalkObserver> {
        Box::new(self.clone())
    }

    /// Finishes the collector at `total_accesses` and returns it. Clones
    /// the inner data only if another handle is still alive.
    pub fn take(self, total_accesses: u64) -> Telemetry {
        self.0.borrow_mut().finish(total_accesses);
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl WalkObserver for SharedTelemetry {
    fn on_walk(&mut self, event: &WalkEvent) {
        self.0.borrow_mut().on_walk(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, cycles: u64, class: WalkClass) -> WalkEvent {
        WalkEvent {
            seq,
            gva: seq * 0x1000,
            gpa: Some(seq * 0x1000),
            mode: "test",
            class,
            write: false,
            cycles,
            guest_refs: 4,
            nested_refs: 20,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
        }
    }

    #[test]
    fn epochs_key_on_access_seq() {
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 100,
            flight_capacity: 0,
        });
        // Events in accesses 1..=100 (epoch 0), 101..=200 (epoch 1), and
        // one event in epoch 3 — epoch 2 has no misses at all.
        t.on_walk(&ev(5, 40, WalkClass::Walk2d));
        t.on_walk(&ev(99, 44, WalkClass::Walk2d));
        t.on_walk(&ev(150, 10, WalkClass::L2Hit));
        t.on_walk(&ev(350, 44, WalkClass::Walk2d));
        t.finish(400);

        let epochs = t.epochs();
        assert_eq!(epochs.len(), 3, "only epochs with events snapshot");
        assert_eq!(epochs[0].index, 0);
        assert_eq!((epochs[0].start_seq, epochs[0].end_seq), (1, 100));
        assert_eq!(epochs[0].events, 2);
        assert_eq!(epochs[1].index, 1);
        assert_eq!(epochs[1].events, 1);
        assert_eq!(epochs[2].index, 3);
        assert_eq!(epochs[2].end_seq, 400, "trailing epoch ends at the run");

        // Conservation: epoch events sum to the run total.
        assert_eq!(epochs.iter().map(|e| e.events).sum::<u64>(), t.events());
        assert_eq!(t.class_count(WalkClass::Walk2d), 3);
        assert_eq!(t.class_count(WalkClass::L2Hit), 1);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.on_walk(&ev(1, 5, WalkClass::Walk2d));
        t.finish(10);
        t.finish(10);
        assert_eq!(t.epochs().len(), 1);
    }

    #[test]
    fn zero_epoch_len_disables_snapshots() {
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 0,
            flight_capacity: 0,
        });
        for s in 1..=50 {
            t.on_walk(&ev(s, 44, WalkClass::Walk2d));
        }
        t.finish(50);
        assert!(t.epochs().is_empty());
        assert_eq!(t.events(), 50);
        assert_eq!(t.hist().count(), 50);
    }

    #[test]
    fn shared_handle_round_trips() {
        let shared = SharedTelemetry::new(TelemetryConfig {
            epoch_len: 10,
            flight_capacity: 4,
        });
        let mut obs = shared.observer();
        for s in 1..=25 {
            obs.on_walk(&ev(s, s, WalkClass::Walk2d));
        }
        drop(obs);
        let t = shared.take(25);
        assert_eq!(t.events(), 25);
        assert_eq!(t.epochs().len(), 3);
        assert_eq!(t.flight().len(), 4);
        assert_eq!(t.flight().overwritten(), 21);
    }
}
