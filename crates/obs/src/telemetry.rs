//! The telemetry aggregator: one observer that feeds histograms, epoch
//! snapshots, and the flight recorder.

use std::cell::RefCell;
use std::rc::Rc;

use crate::epoch::EpochSnapshot;
use crate::event::{EscapeOutcome, FaultKind, WalkClass, WalkEvent, WalkObserver};
use crate::flight::FlightRecorder;
use crate::hist::LatencyHistogram;
use crate::transition::TransitionRecord;

/// Configuration for a [`Telemetry`] collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Accesses per epoch snapshot. Zero is not a valid epoch length:
    /// construct through [`TelemetryConfig::new`] to get a typed
    /// rejection, and note that [`Telemetry::new`] normalizes a literal
    /// zero to 1 rather than silently dropping every event's epoch
    /// attribution (which is what a zero divisor used to do).
    pub epoch_len: u64,
    /// Flight-recorder capacity in events; 0 disables event retention.
    pub flight_capacity: usize,
}

/// Why a [`TelemetryConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TelemetryConfigError {
    /// `epoch_len` was zero. An epoch must span at least one access —
    /// a zero length used to make the epoch divisor silently swallow
    /// every event (no snapshot ever accumulated), which reads exactly
    /// like a run with no misses.
    ZeroEpochLen,
}

impl std::fmt::Display for TelemetryConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryConfigError::ZeroEpochLen => {
                write!(f, "telemetry epoch length must be at least 1 access")
            }
        }
    }
}

impl std::error::Error for TelemetryConfigError {}

impl TelemetryConfig {
    /// Validated constructor: rejects a zero `epoch_len` instead of
    /// letting it reach the collector's epoch divisor.
    ///
    /// # Errors
    ///
    /// [`TelemetryConfigError::ZeroEpochLen`] when `epoch_len` is zero.
    pub fn new(epoch_len: u64, flight_capacity: usize) -> Result<Self, TelemetryConfigError> {
        if epoch_len == 0 {
            return Err(TelemetryConfigError::ZeroEpochLen);
        }
        Ok(TelemetryConfig {
            epoch_len,
            flight_capacity,
        })
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_len: 10_000,
            flight_capacity: 0,
        }
    }
}

/// Run-level telemetry: cumulative latency histogram and per-class /
/// per-fault / per-escape counters, plus periodic [`EpochSnapshot`]s and an
/// optional [`FlightRecorder`] of recent events.
///
/// Implements [`WalkObserver`] directly; use [`SharedTelemetry`] when the
/// collector must outlive the observer attachment (the usual case — the
/// MMU owns the observer box while the harness wants the data afterward).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    hist: LatencyHistogram,
    class_counts: [u64; WalkClass::ALL.len()],
    fault_counts: [u64; 5],
    escape_counts: [u64; 3],
    events: u64,
    last_seq: u64,
    epochs: Vec<EpochSnapshot>,
    cur: Option<EpochAccum>,
    flight: FlightRecorder,
    finished: bool,
    /// Degradation-state transitions recorded by the driver (empty on
    /// chaos-free runs, so existing exports are byte-identical).
    transitions: Vec<TransitionRecord>,
}

/// In-progress epoch.
#[derive(Debug, Clone)]
struct EpochAccum {
    index: u64,
    events: u64,
    class_counts: [u64; WalkClass::ALL.len()],
    faults: u64,
    escapes: u64,
    hist: LatencyHistogram,
}

impl EpochAccum {
    fn new(index: u64) -> Self {
        EpochAccum {
            index,
            events: 0,
            class_counts: [0; WalkClass::ALL.len()],
            faults: 0,
            escapes: 0,
            hist: LatencyHistogram::new(),
        }
    }

    fn snapshot(&self, epoch_len: u64, end_seq: u64) -> EpochSnapshot {
        EpochSnapshot {
            index: self.index,
            start_seq: self.index * epoch_len + 1,
            end_seq,
            events: self.events,
            class_counts: self.class_counts,
            faults: self.faults,
            escapes: self.escapes,
            hist: self.hist,
        }
    }
}

impl Telemetry {
    /// Creates an empty collector. A zero `epoch_len` (possible through
    /// the struct literal, though [`TelemetryConfig::new`] rejects it) is
    /// normalized to 1 — every event then lands in a one-access epoch
    /// instead of vanishing into none.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let cfg = TelemetryConfig {
            epoch_len: cfg.epoch_len.max(1),
            ..cfg
        };
        Telemetry {
            flight: FlightRecorder::new(cfg.flight_capacity),
            cfg,
            ..Telemetry::default()
        }
    }

    /// The configuration the collector was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Cumulative latency histogram over all observed events.
    pub fn hist(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Total walk events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events observed for one [`WalkClass`].
    pub fn class_count(&self, class: WalkClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Events observed for one [`FaultKind`] (including `FaultKind::None`).
    pub fn fault_count(&self, fault: FaultKind) -> u64 {
        self.fault_counts[fault as usize]
    }

    /// Events observed for one [`EscapeOutcome`].
    pub fn escape_count(&self, escape: EscapeOutcome) -> u64 {
        self.escape_counts[escape as usize]
    }

    /// Completed epoch snapshots (includes the trailing partial epoch once
    /// [`Telemetry::finish`] has run).
    pub fn epochs(&self) -> &[EpochSnapshot] {
        &self.epochs
    }

    /// The flight recorder of recent events.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Degradation-state transitions recorded by the driver (empty unless a
    /// chaos run attached them via [`Telemetry::record_transitions`]).
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// Appends degradation-state transitions from the driver. Called once
    /// per run, after the access loop.
    pub fn record_transitions(&mut self, transitions: &[TransitionRecord]) {
        self.transitions.extend_from_slice(transitions);
    }

    /// Folds another (finished) collector into this one: histograms and
    /// per-class/fault/escape counters add, and epoch snapshots with the
    /// same index merge pairwise (parallel trials each observe the same
    /// access windows, so epoch `i` of every trial describes the same
    /// window of simulated work).
    ///
    /// The fold is order-insensitive in everything it keeps — counter
    /// addition and [`LatencyHistogram::merge`] are commutative and
    /// associative — which is what makes a parallel sweep's merged
    /// telemetry byte-identical for any worker count. The flight recorder
    /// is the one exception: a ring of "most recent" events has no
    /// meaningful order across concurrent runs, so the merged collector
    /// *clears* it rather than keeping an arbitrary interleaving.
    ///
    /// Epoch lists are expected to use the same `epoch_len` (the grid
    /// runner always merges runs of one configuration); `self`'s
    /// configuration is kept.
    pub fn merge(&mut self, other: &Telemetry) {
        self.hist.merge(&other.hist);
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts.iter()) {
            *a += b;
        }
        for (a, b) in self.fault_counts.iter_mut().zip(other.fault_counts.iter()) {
            *a += b;
        }
        for (a, b) in self.escape_counts.iter_mut().zip(other.escape_counts.iter()) {
            *a += b;
        }
        self.events += other.events;
        self.last_seq = self.last_seq.max(other.last_seq);

        // Merge-join the (index-sorted) epoch lists.
        let mut merged = Vec::with_capacity(self.epochs.len().max(other.epochs.len()));
        let mut mine = std::mem::take(&mut self.epochs).into_iter().peekable();
        let mut theirs = other.epochs.iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(a), Some(b)) if a.index == b.index => {
                    let mut a = mine.next().expect("peeked");
                    a.merge(theirs.next().expect("peeked"));
                    merged.push(a);
                }
                (Some(a), Some(b)) if a.index < b.index => {
                    merged.push(mine.next().expect("peeked"));
                    let _ = b;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    merged.push(theirs.next().expect("peeked").clone());
                }
                (Some(_), None) => merged.push(mine.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.epochs = merged;

        // Transition lists concatenate; the grid runner folds trials in cell
        // order, so the merged order is deterministic for any worker count.
        self.transitions.extend_from_slice(&other.transitions);

        self.flight = FlightRecorder::new(self.cfg.flight_capacity);
    }

    /// Closes the in-flight epoch accumulator at its natural boundary,
    /// pushing and returning its snapshot — exactly the snapshot the next
    /// event's rollover would have produced, so closing an epoch early
    /// (e.g. an adaptive controller sampling at every epoch boundary)
    /// leaves the exported stream byte-identical.
    ///
    /// Returns `None` when no events arrived since the last boundary (a
    /// quiet epoch) or epochs are disabled.
    pub fn close_epoch(&mut self) -> Option<EpochSnapshot> {
        let cur = self.cur.take()?;
        let end = (cur.index + 1) * self.cfg.epoch_len;
        let snap = cur.snapshot(self.cfg.epoch_len, end);
        self.epochs.push(snap.clone());
        Some(snap)
    }

    /// Closes the collector at `total_accesses` accesses, flushing the
    /// trailing partial epoch (if it saw any events). Idempotent.
    pub fn finish(&mut self, total_accesses: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(cur) = self.cur.take() {
            let end = total_accesses.max(self.last_seq);
            self.epochs.push(cur.snapshot(self.cfg.epoch_len, end));
        }
    }
}

impl WalkObserver for Telemetry {
    fn on_walk(&mut self, e: &WalkEvent) {
        self.events += 1;
        self.last_seq = e.seq;
        self.hist.record(e.cycles);
        self.class_counts[e.class.index()] += 1;
        self.fault_counts[e.fault as usize] += 1;
        self.escape_counts[e.escape as usize] += 1;

        // The constructor normalized `epoch_len >= 1`, so this division is
        // total. (The old `checked_div` here swallowed a zero epoch length
        // by skipping epoch accounting entirely — every event was dropped
        // into *no* epoch, indistinguishable from a miss-free run.)
        let epoch = e.seq.saturating_sub(1) / self.cfg.epoch_len;
        match &self.cur {
            Some(cur) if cur.index != epoch => {
                let cur = self.cur.take().expect("matched Some");
                let end = (cur.index + 1) * self.cfg.epoch_len;
                self.epochs.push(cur.snapshot(self.cfg.epoch_len, end));
                self.cur = Some(EpochAccum::new(epoch));
            }
            None => self.cur = Some(EpochAccum::new(epoch)),
            Some(_) => {}
        }
        let cur = self.cur.as_mut().expect("just ensured");
        cur.events += 1;
        cur.class_counts[e.class.index()] += 1;
        if e.fault != FaultKind::None {
            cur.faults += 1;
        }
        if e.escape == EscapeOutcome::Escaped {
            cur.escapes += 1;
        }
        cur.hist.record(e.cycles);

        if self.cfg.flight_capacity > 0 {
            self.flight.push(*e);
        }
    }
}

/// A clonable handle to a [`Telemetry`] collector.
///
/// The attachment side hands a boxed clone to the MMU ([`SharedTelemetry::observer`])
/// while keeping its own handle; after the run, [`SharedTelemetry::take`]
/// recovers the collected data without any downcasting.
///
/// # Example
///
/// ```
/// use mv_obs::{SharedTelemetry, TelemetryConfig, WalkObserver};
///
/// let shared = SharedTelemetry::new(TelemetryConfig::default());
/// let mut observer = shared.observer();
/// // ... attach `observer` to an MMU and run ...
/// drop(observer);
/// let telemetry = shared.take(123);
/// assert_eq!(telemetry.events(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedTelemetry(Rc<RefCell<Telemetry>>);

impl SharedTelemetry {
    /// Creates a fresh collector behind a shared handle.
    pub fn new(cfg: TelemetryConfig) -> Self {
        SharedTelemetry(Rc::new(RefCell::new(Telemetry::new(cfg))))
    }

    /// A boxed observer feeding this handle's collector.
    pub fn observer(&self) -> Box<dyn WalkObserver> {
        Box::new(self.clone())
    }

    /// Closes the in-flight epoch at its natural boundary and returns its
    /// snapshot (see [`Telemetry::close_epoch`]). `None` for a quiet
    /// epoch.
    pub fn close_epoch(&self) -> Option<EpochSnapshot> {
        self.0.borrow_mut().close_epoch()
    }

    /// The configured epoch length, in accesses (0 = epochs disabled).
    pub fn epoch_len(&self) -> u64 {
        self.0.borrow().config().epoch_len
    }

    /// Finishes the collector at `total_accesses` and returns it. Clones
    /// the inner data only if another handle is still alive.
    pub fn take(self, total_accesses: u64) -> Telemetry {
        self.0.borrow_mut().finish(total_accesses);
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl WalkObserver for SharedTelemetry {
    fn on_walk(&mut self, event: &WalkEvent) {
        self.0.borrow_mut().on_walk(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, cycles: u64, class: WalkClass) -> WalkEvent {
        WalkEvent {
            seq,
            gva: seq * 0x1000,
            gpa: Some(seq * 0x1000),
            mode: "test",
            class,
            write: false,
            cycles,
            guest_refs: 4,
            nested_refs: 20,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr: Default::default(),
        }
    }

    #[test]
    fn epochs_key_on_access_seq() {
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 100,
            flight_capacity: 0,
        });
        // Events in accesses 1..=100 (epoch 0), 101..=200 (epoch 1), and
        // one event in epoch 3 — epoch 2 has no misses at all.
        t.on_walk(&ev(5, 40, WalkClass::Walk2d));
        t.on_walk(&ev(99, 44, WalkClass::Walk2d));
        t.on_walk(&ev(150, 10, WalkClass::L2Hit));
        t.on_walk(&ev(350, 44, WalkClass::Walk2d));
        t.finish(400);

        let epochs = t.epochs();
        assert_eq!(epochs.len(), 3, "only epochs with events snapshot");
        assert_eq!(epochs[0].index, 0);
        assert_eq!((epochs[0].start_seq, epochs[0].end_seq), (1, 100));
        assert_eq!(epochs[0].events, 2);
        assert_eq!(epochs[1].index, 1);
        assert_eq!(epochs[1].events, 1);
        assert_eq!(epochs[2].index, 3);
        assert_eq!(epochs[2].end_seq, 400, "trailing epoch ends at the run");

        // Conservation: epoch events sum to the run total.
        assert_eq!(epochs.iter().map(|e| e.events).sum::<u64>(), t.events());
        assert_eq!(t.class_count(WalkClass::Walk2d), 3);
        assert_eq!(t.class_count(WalkClass::L2Hit), 1);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.on_walk(&ev(1, 5, WalkClass::Walk2d));
        t.finish(10);
        t.finish(10);
        assert_eq!(t.epochs().len(), 1);
    }

    #[test]
    fn zero_epoch_len_is_rejected_and_normalized() {
        // Regression: a zero epoch length used to make the epoch divisor
        // swallow every event — 50 misses, zero epochs, a run that looked
        // miss-free to anything reading the snapshots. The validated
        // constructor now rejects it outright…
        assert_eq!(
            TelemetryConfig::new(0, 0),
            Err(TelemetryConfigError::ZeroEpochLen)
        );
        assert_eq!(
            TelemetryConfig::new(1, 4),
            Ok(TelemetryConfig {
                epoch_len: 1,
                flight_capacity: 4,
            })
        );
        // …and a literal zero smuggled past it is normalized to 1, so
        // every event still lands in an epoch and conservation holds.
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 0,
            flight_capacity: 0,
        });
        assert_eq!(t.config().epoch_len, 1);
        for s in 1..=50 {
            t.on_walk(&ev(s, 44, WalkClass::Walk2d));
        }
        t.finish(50);
        assert_eq!(t.epochs().len(), 50, "one-access epochs, none dropped");
        assert_eq!(t.epochs().iter().map(|e| e.events).sum::<u64>(), t.events());
        assert_eq!(t.events(), 50);
        assert_eq!(t.hist().count(), 50);
    }

    #[test]
    fn merge_is_order_insensitive_and_joins_epochs() {
        let collect = |seqs: &[u64]| {
            let mut t = Telemetry::new(TelemetryConfig {
                epoch_len: 100,
                flight_capacity: 4,
            });
            for &s in seqs {
                t.on_walk(&ev(s, 10 + s, WalkClass::Walk2d));
            }
            t.finish(400);
            t
        };
        // Trial A misses in epochs 0 and 1; trial B in epochs 1 and 3.
        let a = collect(&[5, 150]);
        let b = collect(&[160, 350]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        assert_eq!(ab.events(), 4);
        assert_eq!(ab.hist(), ba.hist());
        assert_eq!(ab.epochs(), ba.epochs());
        let indices: Vec<u64> = ab.epochs().iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![0, 1, 3], "union of epoch indices, sorted");
        assert_eq!(ab.epochs()[1].events, 2, "same-index epochs fold");
        assert_eq!(
            ab.epochs().iter().map(|e| e.events).sum::<u64>(),
            ab.events(),
            "conservation survives the merge"
        );
        assert_eq!(ab.flight().len(), 0, "merged flight recorder is cleared");
        assert_eq!(ab.class_count(WalkClass::Walk2d), 4);
    }

    #[test]
    fn merge_is_associative() {
        let one = |seq: u64, cycles: u64| {
            let mut t = Telemetry::new(TelemetryConfig {
                epoch_len: 50,
                flight_capacity: 0,
            });
            t.on_walk(&ev(seq, cycles, WalkClass::L2Hit));
            t.finish(200);
            t
        };
        let (a, b, c) = (one(10, 5), one(60, 7), one(110, 9));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.epochs(), right.epochs());
        assert_eq!(left.hist(), right.hist());
        assert_eq!(left.events(), right.events());
    }

    #[test]
    #[should_panic(expected = "same epoch")]
    fn epoch_merge_rejects_mismatched_indices() {
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 100,
            flight_capacity: 0,
        });
        t.on_walk(&ev(5, 1, WalkClass::Walk2d));
        t.finish(100);
        let mut a = t.epochs()[0].clone();
        let mut b = a.clone();
        b.index += 1;
        a.merge(&b);
    }

    #[test]
    fn shared_handle_round_trips() {
        let shared = SharedTelemetry::new(TelemetryConfig {
            epoch_len: 10,
            flight_capacity: 4,
        });
        let mut obs = shared.observer();
        for s in 1..=25 {
            obs.on_walk(&ev(s, s, WalkClass::Walk2d));
        }
        drop(obs);
        let t = shared.take(25);
        assert_eq!(t.events(), 25);
        assert_eq!(t.epochs().len(), 3);
        assert_eq!(t.flight().len(), 4);
        assert_eq!(t.flight().overwritten(), 21);
    }
}
