//! Fixed-bucket log2 latency histogram.

use core::fmt;

/// Number of buckets. Bucket 0 holds exactly the value 0; bucket `i` (for
/// `1 <= i < BUCKETS-1`) holds values in `[2^(i-1), 2^i - 1]`; the last
/// bucket holds everything from `2^(BUCKETS-2)` up.
pub const BUCKETS: usize = 32;

/// A log2-bucketed histogram of per-miss translation latencies.
///
/// Fixed size (no allocation per record), mergeable, and cheap enough to
/// keep one per epoch. Counts are conserved: the bucket counts always sum
/// to [`LatencyHistogram::count`].
///
/// # Example
///
/// ```
/// use mv_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for c in [0, 1, 7, 44, 44, 200] {
///     h.record(c);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.sum(), 296);
/// assert_eq!(h.percentile(0.5), 7, "p50 falls in the [4,7] bucket");
/// assert_eq!(h.percentile(0.95), 200, "p95 bound is clamped to the observed max");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    ///
    /// # Panics
    ///
    /// Panics if `i >= BUCKETS`.
    pub fn bucket_bound(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket index out of range");
        if i == 0 {
            0
        } else if i == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value. The running sum saturates at `u64::MAX` rather
    /// than wrapping, so pathological inputs degrade the mean instead of
    /// corrupting it.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `p`-quantile (`0 < p <= 1`);
    /// the exact value when it falls in the first two buckets. Returns 0 on
    /// an empty histogram, and the max-value's bucket bound for `p = 1`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a bound past the observed maximum.
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's contents into this one. Merging is
    /// commutative and associative, so shards can combine in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for LatencyHistogram {
    /// Compact one-line rendering: `n=…, mean=…, p50=…, p95=…, p99=…, max=…`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50<={} p95<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
        // Every value lands in the bucket whose bound covers it.
        for v in [0u64, 1, 5, 100, 4096, 1 << 40] {
            let i = LatencyHistogram::bucket_index(v);
            assert!(v <= LatencyHistogram::bucket_bound(i));
            if i > 0 {
                assert!(v > LatencyHistogram::bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn counts_and_moments() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 3, 3, 10, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 116);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 23.2).abs() < 1e-12);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn percentiles_of_empty_and_single() {
        assert_eq!(LatencyHistogram::new().percentile(0.5), 0);
        let mut h = LatencyHistogram::new();
        h.record(44);
        assert_eq!(h.percentile(0.5), 44, "clamped to the observed max");
        assert_eq!(h.percentile(1.0), 44);
    }

    #[test]
    fn merge_is_add() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1);
        a.record(50);
        b.record(7);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 58);
        assert_eq!(m.max(), 50);
    }
}
