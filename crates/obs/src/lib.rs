//! Observability for the simulation stack: structured walk events, latency
//! histograms, epoch telemetry, and exporters.
//!
//! The paper's evaluation lives and dies by *measurement*: every reported
//! number is a counted translation event (Section VII). This crate makes
//! that measurement a first-class, zero-cost-when-disabled subsystem:
//!
//! * [`WalkEvent`] / [`WalkObserver`] — a structured record of each TLB
//!   miss (addresses, dimensionality class, charged cycles, escape-filter
//!   outcome, fault kind) delivered through a hook the MMU invokes only on
//!   its already-slow miss path. With no observer attached the hot path
//!   pays a single branch.
//! * [`LatencyHistogram`] — fixed log2-bucket histogram of per-miss
//!   latency: no allocation per record, mergeable across shards.
//! * [`Telemetry`] / [`EpochSnapshot`] — run-level aggregation with
//!   periodic per-epoch snapshots (every N accesses), so drift over a run
//!   (TLB warmup, ballooning, churn) is visible, not averaged away.
//! * [`FlightRecorder`] — a bounded ring of the most recent events (the
//!   black-box complement to `mv_core::MissTrace`, which keeps the first
//!   N).
//! * Exporters — JSONL ([`Telemetry::write_jsonl`]) and Prometheus text
//!   exposition ([`Telemetry::prometheus`]).
//!
//! This crate is dependency-free (addresses are raw `u64`); `mv-core`
//! emits events, `mv-sim` wires collection into runs, and the `mv-bench`
//! binaries export the results.
//!
//! # Example
//!
//! ```
//! use mv_obs::{SharedTelemetry, TelemetryConfig, WalkClass, WalkEvent, WalkObserver};
//! use mv_obs::{EscapeOutcome, FaultKind};
//!
//! let shared = SharedTelemetry::new(TelemetryConfig { epoch_len: 100, flight_capacity: 8 });
//! let mut observer = shared.observer(); // attach this to an Mmu
//! observer.on_walk(&WalkEvent {
//!     seq: 1, gva: 0x7000_0000, gpa: Some(0x1000), mode: "4K+4K",
//!     class: WalkClass::Walk2d, write: false, cycles: 44,
//!     guest_refs: 4, nested_refs: 20,
//!     escape: EscapeOutcome::NotChecked, fault: FaultKind::None,
//!     attr: Default::default(),
//! });
//! drop(observer);
//! let telemetry = shared.take(1);
//! assert_eq!(telemetry.events(), 1);
//! assert_eq!(telemetry.hist().sum(), 44);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attr;
mod epoch;
mod event;
mod export;
mod flight;
mod hist;
mod telemetry;
mod transition;

pub use attr::{
    WalkAttr, COL_LABELS, GUEST_ROWS, MID_COLS, MID_LABELS, NESTED_COLS, REF_COL, ROW_LABELS,
};
pub use epoch::EpochSnapshot;
pub use event::{EscapeOutcome, FaultKind, WalkClass, WalkEvent, WalkObserver};
pub use export::{epoch_jsonl, event_jsonl};
pub use flight::FlightRecorder;
pub use hist::{LatencyHistogram, BUCKETS};
pub use telemetry::{SharedTelemetry, Telemetry, TelemetryConfig, TelemetryConfigError};
pub use transition::TransitionRecord;
