//! Randomized property tests for [`mv_obs::LatencyHistogram`].
//!
//! Hand-rolled property testing over `mv_types::rng::StdRng` (the
//! workspace has no external dependencies): each property is checked
//! across many seeded random cases, and a failure message carries the
//! seed so the case can be replayed.

use mv_obs::{LatencyHistogram, BUCKETS};
use mv_types::rng::{Rng, StdRng};

const CASES: u64 = 200;

/// Draws a value distribution that exercises every bucket regime: zeros,
/// small counts, mid-range cycle costs, and huge outliers.
fn draw_value(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0u32..4) {
        0 => 0,
        1 => rng.gen_range(0u64..16),
        2 => rng.gen_range(0u64..10_000),
        _ => 1u64 << rng.gen_range(0u32..63),
    }
}

fn random_hist(rng: &mut StdRng, n: usize) -> (LatencyHistogram, Vec<u64>) {
    let mut h = LatencyHistogram::new();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v = draw_value(rng);
        h.record(v);
        values.push(v);
    }
    (h, values)
}

#[test]
fn total_count_and_sum_are_conserved() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..500);
        let (h, values) = random_hist(&mut rng, n);

        assert_eq!(h.count(), n as u64, "seed {seed}: count mismatch");
        let bucket_total: u64 = h.counts().iter().sum();
        assert_eq!(
            bucket_total,
            n as u64,
            "seed {seed}: bucket counts must sum to the record count"
        );
        // The histogram's sum saturates (never wraps); mirror that here.
        let expected_sum = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        assert_eq!(h.sum(), expected_sum, "seed {seed}: sum mismatch");
        assert_eq!(
            h.max(),
            values.iter().copied().max().unwrap_or(0),
            "seed {seed}: max mismatch"
        );
    }
}

#[test]
fn every_value_lands_in_a_bucket_covering_it() {
    // Bucket bounds are monotone and each recorded value falls in exactly
    // the bucket whose (lower, upper] range contains it.
    for i in 1..BUCKETS {
        assert!(
            LatencyHistogram::bucket_bound(i) > LatencyHistogram::bucket_bound(i - 1),
            "bucket bounds must be strictly increasing"
        );
    }
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let v = draw_value(&mut rng);
        let mut h = LatencyHistogram::new();
        h.record(v);
        let idx = h
            .counts()
            .iter()
            .position(|&c| c == 1)
            .expect("one bucket holds the value");
        assert!(
            v <= LatencyHistogram::bucket_bound(idx),
            "seed {seed}: value {v} exceeds its bucket's upper bound"
        );
        if idx > 0 {
            assert!(
                v > LatencyHistogram::bucket_bound(idx - 1),
                "seed {seed}: value {v} also fits the previous bucket"
            );
        }
    }
}

#[test]
fn percentiles_are_monotone_and_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let n = rng.gen_range(1usize..300);
        let (h, values) = random_hist(&mut rng, n);

        let mut last = 0u64;
        for p in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
            let q = h.percentile(p);
            assert!(q >= last, "seed {seed}: percentile not monotone in p");
            assert!(q <= h.max(), "seed {seed}: percentile above observed max");
            last = q;
        }
        // The reported quantile is an upper bound: at least ceil(p*n)
        // values are <= it (the bucket bound can only over-estimate).
        for p in [0.5, 0.9] {
            let q = h.percentile(p);
            let rank = (p * n as f64).ceil() as usize;
            let at_or_below = values.iter().filter(|&&v| v <= q).count();
            assert!(
                at_or_below >= rank,
                "seed {seed}: p{p} bound {q} covers only {at_or_below}/{rank}"
            );
        }
    }
}

#[test]
fn merge_is_commutative_and_associative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let (a, _) = { let n = rng.gen_range(0usize..100); random_hist(&mut rng, n) };
        let (b, _) = { let n = rng.gen_range(0usize..100); random_hist(&mut rng, n) };
        let (c, _) = { let n = rng.gen_range(0usize..100); random_hist(&mut rng, n) };

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: merge must be commutative");

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "seed {seed}: merge must be associative");
    }
}

#[test]
fn merge_equals_recording_the_concatenation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let (mut a, va) = { let n = rng.gen_range(0usize..100); random_hist(&mut rng, n) };
        let (b, vb) = { let n = rng.gen_range(0usize..100); random_hist(&mut rng, n) };
        a.merge(&b);

        let mut whole = LatencyHistogram::new();
        for v in va.iter().chain(vb.iter()) {
            whole.record(*v);
        }
        assert_eq!(a, whole, "seed {seed}: merge differs from concatenation");
    }
}
