//! Property tests for the guest OS: frame conservation under arbitrary
//! fault/unmap/balloon sequences, and translation consistency.

use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{Gva, PageSize, Prot, MIB};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Fault { page: u64 },
    Unmap { page: u64 },
    BalloonInflate { frames: usize },
    BalloonDeflate,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..256).prop_map(|page| Op::Fault { page }),
        3 => (0u64..256).prop_map(|page| Op::Unmap { page }),
        1 => (1usize..64).prop_map(|frames| Op::BalloonInflate { frames }),
        1 => Just(Op::BalloonDeflate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn guest_os_conserves_frames(seq in proptest::collection::vec(ops(), 1..120)) {
        let installed = 32 * MIB;
        let mut os = GuestOs::boot(GuestConfig::small(installed));
        let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K));
        let base = os.mmap(pid, 2 * MIB, Prot::RW).unwrap().as_u64();
        let mut model = std::collections::HashSet::new();

        for op in seq {
            match op {
                Op::Fault { page } => {
                    let va = Gva::new(base + page * 4096);
                    if model.contains(&page) {
                        // Re-faulting a mapped page is how real kernels hit
                        // "spurious" faults; the model maps once.
                        continue;
                    }
                    os.handle_page_fault(pid, va).unwrap();
                    model.insert(page);
                }
                Op::Unmap { page } => {
                    let va = Gva::new(base + page * 4096);
                    let r = os.unmap_page(pid, va).unwrap();
                    prop_assert_eq!(r.is_some(), model.remove(&page));
                }
                Op::BalloonInflate { frames } => {
                    // May fail when memory is tight; both outcomes are fine.
                    let _ = os.balloon_inflate(frames);
                }
                Op::BalloonDeflate => {
                    os.balloon_deflate_all().unwrap();
                }
            }

            // Frame conservation: free + mapped + ballooned + table pages
            // always equals installed memory.
            let stats = os.mem().stats();
            let pt_pages = os.process(pid).page_table().stats().table_pages;
            let used = model.len() as u64
                + os.balloon.held_frames() as u64
                + pt_pages;
            prop_assert_eq!(
                stats.free_bytes + used * 4096,
                installed,
                "frame accounting diverged"
            );

            // Translation consistency: exactly the model's pages map.
            let (pt, mem) = os.pt_and_mem(pid);
            for page in 0..256u64 {
                let va = Gva::new(base + page * 4096);
                prop_assert_eq!(
                    pt.translate(mem, va).is_some(),
                    model.contains(&page),
                    "mapping state diverged at page {}", page
                );
            }
        }
    }

    /// Distinct mapped pages always get distinct frames.
    #[test]
    fn mapped_frames_never_alias(pages in proptest::collection::hash_set(0u64..512, 1..64)) {
        let mut os = GuestOs::boot(GuestConfig::small(32 * MIB));
        let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K));
        let base = os.mmap(pid, 4 * MIB, Prot::RW).unwrap().as_u64();
        let mut frames = std::collections::HashSet::new();
        for &page in &pages {
            let fix = os.handle_page_fault(pid, Gva::new(base + page * 4096)).unwrap();
            prop_assert!(frames.insert(fix.gpa), "frame {:?} handed out twice", fix.gpa);
        }
    }
}
