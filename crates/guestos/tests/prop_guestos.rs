//! Property tests for the guest OS: frame conservation under arbitrary
//! fault/unmap/balloon sequences, and translation consistency. Randomized
//! via the workspace's internal deterministic RNG.

use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::rng::{Rng, StdRng};
use mv_types::{Gva, PageSize, Prot, MIB};

#[derive(Debug, Clone)]
enum Op {
    Fault { page: u64 },
    Unmap { page: u64 },
    BalloonInflate { frames: usize },
    BalloonDeflate,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..10) {
        0..=4 => Op::Fault {
            page: rng.gen_range(0u64..256),
        },
        5..=7 => Op::Unmap {
            page: rng.gen_range(0u64..256),
        },
        8 => Op::BalloonInflate {
            frames: rng.gen_range(1usize..64),
        },
        _ => Op::BalloonDeflate,
    }
}

#[test]
fn guest_os_conserves_frames() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x50e5_7000u64 + case);
        let n_ops = rng.gen_range(1usize..120);
        let installed = 32 * MIB;
        let mut os = GuestOs::boot(GuestConfig::small(installed)).unwrap();
        let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
        let base = os.mmap(pid, 2 * MIB, Prot::RW).unwrap().as_u64();
        let mut model = std::collections::HashSet::new();

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Fault { page } => {
                    let va = Gva::new(base + page * 4096);
                    if model.contains(&page) {
                        // Re-faulting a mapped page is how real kernels hit
                        // "spurious" faults; the model maps once.
                        continue;
                    }
                    os.handle_page_fault(pid, va).unwrap();
                    model.insert(page);
                }
                Op::Unmap { page } => {
                    let va = Gva::new(base + page * 4096);
                    let r = os.unmap_page(pid, va).unwrap();
                    assert_eq!(r.is_some(), model.remove(&page), "case {case}");
                }
                Op::BalloonInflate { frames } => {
                    // May fail when memory is tight; both outcomes are fine.
                    let _ = os.balloon_inflate(frames);
                }
                Op::BalloonDeflate => {
                    os.balloon_deflate_all().unwrap();
                }
            }

            // Frame conservation: free + mapped + ballooned + table pages
            // always equals installed memory.
            let stats = os.mem().stats();
            let pt_pages = os.process(pid).page_table().stats().table_pages;
            let used = model.len() as u64 + os.balloon.held_frames() as u64 + pt_pages;
            assert_eq!(
                stats.free_bytes + used * 4096,
                installed,
                "case {case}: frame accounting diverged"
            );

            // Translation consistency: exactly the model's pages map.
            let (pt, mem) = os.pt_and_mem(pid);
            for page in 0..256u64 {
                let va = Gva::new(base + page * 4096);
                assert_eq!(
                    pt.translate(mem, va).is_some(),
                    model.contains(&page),
                    "case {case}: mapping state diverged at page {page}"
                );
            }
        }
    }
}

/// Distinct mapped pages always get distinct frames.
#[test]
fn mapped_frames_never_alias() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x50e5_7100u64 + case);
        let n = rng.gen_range(1usize..64);
        let mut pages = std::collections::HashSet::new();
        while pages.len() < n {
            pages.insert(rng.gen_range(0u64..512));
        }
        let mut os = GuestOs::boot(GuestConfig::small(32 * MIB)).unwrap();
        let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
        let base = os.mmap(pid, 4 * MIB, Prot::RW).unwrap().as_u64();
        let mut frames = std::collections::HashSet::new();
        for &page in &pages {
            let fix = os.handle_page_fault(pid, Gva::new(base + page * 4096)).unwrap();
            assert!(
                frames.insert(fix.gpa),
                "case {case}: frame {:?} handed out twice",
                fix.gpa
            );
        }
    }
}
