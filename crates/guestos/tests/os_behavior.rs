//! Behavioral tests for the guest OS: demand paging, THP, primary regions,
//! guest-segment setup, hotplug, and the I/O-gap layout.

use mv_guestos::{GuestConfig, GuestOs, OsError, PageSizePolicy};
use mv_types::{
    layout::{IO_GAP_END, IO_GAP_START},
    Gva, PageSize, Prot, GIB, MIB,
};

#[test]
fn demand_paging_maps_on_fault() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va = os.mmap(pid, MIB, Prot::RW).unwrap();
    let (pt, mem) = os.pt_and_mem(pid);
    assert!(pt.translate(mem, va).is_none(), "nothing mapped before fault");

    let fix = os.handle_page_fault(pid, Gva::new(va.as_u64() + 0x123)).unwrap();
    assert_eq!(fix.va_page, va);
    assert_eq!(fix.size, PageSize::Size4K);
    let (pt, mem) = os.pt_and_mem(pid);
    let t = pt.translate(mem, va).expect("mapped after fault");
    assert_eq!(t.page_base, fix.gpa);
    assert_eq!(os.process(pid).fault_count(), 1);
}

#[test]
fn fault_outside_vma_is_a_segfault() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let err = os.handle_page_fault(pid, Gva::new(0xdead_0000)).unwrap_err();
    assert_eq!(err, OsError::SegmentationFault { va: 0xdead_0000 });
}

#[test]
fn fixed_2m_policy_maps_huge_pages() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size2M)).unwrap();
    let va = os.mmap(pid, 8 * MIB, Prot::RW).unwrap();
    assert!(va.is_aligned(PageSize::Size2M), "mmap aligns to policy size");
    let fix = os.handle_page_fault(pid, va).unwrap();
    assert_eq!(fix.size, PageSize::Size2M);
}

#[test]
fn thp_maps_whole_regions_as_2m_when_possible() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Thp).unwrap();
    let va = os.mmap(pid, 4 * MIB, Prot::RW).unwrap();
    let fix = os.handle_page_fault(pid, Gva::new(va.as_u64() + 0x5000)).unwrap();
    assert_eq!(fix.size, PageSize::Size2M, "THP promoted the fault");
    assert_eq!(os.process(pid).thp_promotions(), 1);
}

#[test]
fn thp_falls_back_to_4k_for_partial_regions() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Thp).unwrap();
    // A VMA smaller than 2 MiB can never hold a huge page.
    let va = os.mmap(pid, 64 * 1024, Prot::RW).unwrap();
    let fix = os.handle_page_fault(pid, va).unwrap();
    assert_eq!(fix.size, PageSize::Size4K);
    assert_eq!(os.process(pid).thp_promotions(), 0);
}

#[test]
fn populate_prefaults_a_range() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va = os.mmap(pid, MIB, Prot::RW).unwrap();
    os.populate(pid, va, MIB).unwrap();
    assert_eq!(os.process(pid).fault_count(), 256);
    let (pt, mem) = os.pt_and_mem(pid);
    for off in (0..MIB).step_by(4096) {
        assert!(pt.translate(mem, Gva::new(va.as_u64() + off)).is_some());
    }
}

#[test]
fn guest_segment_requires_primary_region() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    assert_eq!(
        os.setup_guest_segment(pid).unwrap_err(),
        OsError::NoPrimaryRegion { pid }
    );
}

#[test]
fn guest_segment_maps_primary_region_contiguously() {
    let mut os = GuestOs::boot(GuestConfig::small(128 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = os.create_primary_region(pid, 32 * MIB).unwrap();
    let seg = os.setup_guest_segment(pid).unwrap();
    assert!(seg.contains(base));
    assert!(seg.contains(Gva::new(base.as_u64() + 32 * MIB - 1)));
    assert!(!seg.contains(Gva::new(base.as_u64() + 32 * MIB)));
    // Backing is a real contiguous reservation.
    let backing = os.process(pid).segment_backing().unwrap();
    assert_eq!(backing.len(), 32 * MIB);
    assert_eq!(seg.translate(base).unwrap(), backing.start());
}

#[test]
fn boot_reservation_feeds_segments_first() {
    let mut os = GuestOs::boot(GuestConfig {
        boot_reservation: 32 * MIB,
        ..GuestConfig::small(128 * MIB)
    }).unwrap();
    let reserved = os.reservation().unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    os.create_primary_region(pid, 16 * MIB).unwrap();
    let seg = os.setup_guest_segment(pid).unwrap();
    let backing = os.process(pid).segment_backing().unwrap();
    assert_eq!(backing.start(), reserved.start(), "carved from the reservation");
    assert_eq!(os.reservation().unwrap().len(), 16 * MIB, "half remains");
    let _ = seg;
}

#[test]
fn fragmented_guest_memory_blocks_segment_creation() {
    use mv_types::rng::StdRng;

    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let _held = os.mem_mut().fragment(&mut rng, 0.4);
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    os.create_primary_region(pid, 32 * MIB).unwrap();
    let err = os.setup_guest_segment(pid).unwrap_err();
    assert!(
        matches!(err, OsError::Fragmented { .. }),
        "fragmentation must surface so self-ballooning can kick in, got {err:?}"
    );
}

#[test]
fn escaped_segment_page_faults_map_segment_computed_frame() {
    let mut os = GuestOs::boot(GuestConfig::small(128 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = os.create_primary_region(pid, 16 * MIB).unwrap();
    let seg = os.setup_guest_segment(pid).unwrap();
    let va = Gva::new(base.as_u64() + 0x3000);
    let fix = os.handle_page_fault(pid, va).unwrap();
    assert_eq!(fix.gpa, seg.translate(va).unwrap(), "layout stays coherent");
}

#[test]
fn io_gap_layout_splits_memory() {
    // 5 GiB installed with the gap: [0,3G) low + [4G,6G) high.
    let os = GuestOs::boot(GuestConfig::with_io_gap(5 * GIB, 0)).unwrap();
    let stats = os.mem().stats();
    assert_eq!(stats.size_bytes, 6 * GIB);
    assert_eq!(stats.free_bytes, 5 * GIB, "1 GiB gap is not allocatable");
    // The largest contiguous run is capped by the gap.
    assert!(stats.largest_free_run_bytes <= 3 * GIB);
}

#[test]
fn io_gap_reclaim_unplugs_low_and_hotplugs_high() {
    // The Section VI.C flow: keep 256 MiB low, move the rest above 4 GiB.
    let keep = 256 * MIB;
    let mut os = GuestOs::boot(GuestConfig::with_io_gap(5 * GIB, 3 * GIB)).unwrap();
    let removed = os.unplug_low_memory(keep).unwrap();
    assert_eq!(removed, 3 * GIB - keep);
    let added = os.hotplug_add(removed).unwrap();
    assert_eq!(added.len(), removed);
    assert!(added.start() >= IO_GAP_END);
    // Now a direct segment can cover nearly all guest memory: the largest
    // contiguous run spans installed-high + hot-added memory.
    let stats = os.mem().stats();
    assert!(
        stats.largest_free_run_bytes >= 2 * GIB + removed,
        "high memory is contiguous: got {:#x}",
        stats.largest_free_run_bytes
    );
    assert!(os.unplugged()[0].start().as_u64() == keep);
    assert!(os.unplugged()[0].end() == IO_GAP_START);
}

#[test]
fn hotplug_capacity_is_bounded() {
    let mut os = GuestOs::boot(GuestConfig::with_io_gap(5 * GIB, GIB)).unwrap();
    assert_eq!(os.offline_capacity(), GIB);
    os.hotplug_add(GIB).unwrap();
    assert_eq!(os.offline_capacity(), 0);
    assert!(matches!(
        os.hotplug_add(4096),
        Err(OsError::Hotplug { .. })
    ));
}

#[test]
fn unplug_of_busy_low_memory_fails() {
    let mut os = GuestOs::boot(GuestConfig::with_io_gap(5 * GIB, 0)).unwrap();
    // Occupy some low memory.
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va = os.mmap(pid, MIB, Prot::RW).unwrap();
    os.populate(pid, va, MIB).unwrap();
    let err = os.unplug_low_memory(0).unwrap_err();
    assert!(matches!(err, OsError::Hotplug { .. }));
}

#[test]
fn processes_have_distinct_page_tables() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let a = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let b = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va_a = os.mmap(a, MIB, Prot::RW).unwrap();
    os.handle_page_fault(a, va_a).unwrap();
    let (pt_b, mem) = os.pt_and_mem(b);
    assert!(pt_b.translate(mem, va_a).is_none(), "process b cannot see a's pages");
}
