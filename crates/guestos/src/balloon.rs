//! The balloon driver (guest half of self-ballooning, Section IV).
//!
//! A balloon driver asks its own OS for pages, pins them so the guest can
//! neither use nor swap them, and hands them to the VMM for reclamation.
//! Self-ballooning pairs an inflate with a hotplug-add of the same amount
//! of *contiguous* guest-physical memory, converting fragmented free memory
//! into contiguous free memory without copying.

use mv_phys::PhysMem;
use mv_types::{Gpa, PageSize};

use crate::OsError;

/// State of the guest balloon driver.
#[derive(Debug, Default)]
pub struct BalloonDriver {
    /// Frames currently held by the balloon (pinned, surrendered to VMM).
    held: Vec<Gpa>,
}

impl BalloonDriver {
    /// Creates a deflated balloon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB frames currently ballooned out.
    pub fn held_frames(&self) -> usize {
        self.held.len()
    }

    /// Inflates by `frames` 4 KiB frames: allocates whatever (possibly
    /// fragmented) free frames the OS can spare, pins them, and returns
    /// their addresses for the VMM to reclaim.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Phys`] if the guest does not have enough free
    /// memory; frames allocated before the failure are released again.
    pub fn inflate(
        &mut self,
        mem: &mut PhysMem<Gpa>,
        frames: usize,
    ) -> Result<Vec<Gpa>, OsError> {
        let mut got = Vec::with_capacity(frames);
        for _ in 0..frames {
            match mem.alloc(PageSize::Size4K) {
                Ok(f) => got.push(f),
                Err(e) => {
                    for f in got {
                        // Rollback of a just-made allocation; a failure here
                        // means the allocator is inconsistent — leak the
                        // frame rather than abort.
                        let _ = mem.free(f, PageSize::Size4K);
                    }
                    return Err(OsError::Phys(e));
                }
            }
        }
        for &f in &got {
            mem.set_pinned(f, true).map_err(OsError::Phys)?;
        }
        self.held.extend(got.iter().copied());
        Ok(got)
    }

    /// Deflates by returning every held frame to the guest's free pool
    /// (the VMM re-populated their backing).
    pub fn deflate_all(&mut self, mem: &mut PhysMem<Gpa>) -> Result<usize, OsError> {
        let n = self.held.len();
        for f in self.held.drain(..) {
            mem.set_pinned(f, false).map_err(OsError::Phys)?;
            mem.free(f, PageSize::Size4K).map_err(OsError::Phys)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::MIB;

    #[test]
    fn inflate_pins_and_deflate_releases() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(4 * MIB);
        let mut b = BalloonDriver::new();
        let frames = b.inflate(&mut mem, 100).unwrap();
        assert_eq!(frames.len(), 100);
        assert_eq!(b.held_frames(), 100);
        assert_eq!(mem.free_bytes(), 4 * MIB - 100 * 4096);
        assert_eq!(b.deflate_all(&mut mem).unwrap(), 100);
        assert_eq!(mem.free_bytes(), 4 * MIB);
        assert_eq!(b.held_frames(), 0);
    }

    #[test]
    fn failed_inflate_rolls_back() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(MIB); // 256 frames
        let mut b = BalloonDriver::new();
        assert!(b.inflate(&mut mem, 1000).is_err());
        assert_eq!(mem.free_bytes(), MIB, "partial allocation released");
        assert_eq!(b.held_frames(), 0);
    }
}
