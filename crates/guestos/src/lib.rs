//! Guest operating-system model.
//!
//! Models the guest-side software the paper modifies (Linux in the
//! prototype): process address spaces with demand paging, transparent
//! huge pages, primary regions and guest-segment setup, boot-time
//! contiguous reservation (Section VI.A), the balloon driver used by
//! self-ballooning, and memory hotplug including the I/O-gap relocation of
//! Section VI.C.
//!
//! The guest OS owns its guest-physical memory ([`mv_phys::PhysMem<Gpa>`])
//! and the per-process guest page tables. The VMM (in `mv-vmm`) owns the
//! host side; the two interact only through explicit calls (balloon,
//! hotplug), exactly like a paravirtual driver boundary.
//!
//! # Example
//!
//! ```
//! use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
//! use mv_types::{PageSize, Prot, MIB};
//!
//! let mut os = GuestOs::boot(GuestConfig::small(256 * MIB))?;
//! let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K))?;
//! let va = os.mmap(pid, 4 * MIB, Prot::RW)?;
//! os.handle_page_fault(pid, va)?; // demand paging maps the first page
//! # Ok::<(), mv_guestos::OsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Fault-reachable library code must degrade via typed errors, never abort
// (tests may still unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod balloon;
mod error;
mod os;
mod process;

pub use balloon::BalloonDriver;
pub use error::OsError;
pub use os::{FaultFix, GuestConfig, GuestOs};
pub use process::{PageSizePolicy, Pid, Process, Vma};
