//! Guest processes and their address spaces.

use std::collections::BTreeMap;

use mv_core::Segment;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Gva, PageSize, Prot};

/// Guest process identifier (also used as the TLB ASID).
pub type Pid = u32;

/// How a process's anonymous memory is mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSizePolicy {
    /// All mappings use this page size (big-memory applications explicitly
    /// request 4 KiB / 2 MiB / 1 GiB pages — Section VIII).
    Fixed(PageSize),
    /// 4 KiB demand paging with transparent-huge-page promotion: aligned
    /// 512-page groups are collapsed to 2 MiB when complete.
    Thp,
}

impl PageSizePolicy {
    /// The size a fresh fault maps at.
    pub fn fault_size(self) -> PageSize {
        match self {
            PageSizePolicy::Fixed(s) => s,
            PageSizePolicy::Thp => PageSize::Size4K,
        }
    }
}

/// A virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// Covered virtual range.
    pub range: AddrRange<Gva>,
    /// Protection.
    pub prot: Prot,
    /// Whether this VMA is the process's primary region (a contiguous,
    /// uniformly-protected range eligible for direct-segment backing).
    pub primary: bool,
}

/// A guest process: page table, VMAs, and optional guest segment.
#[derive(Debug)]
pub struct Process {
    pid: Pid,
    policy: PageSizePolicy,
    /// VMAs keyed by start address.
    vmas: BTreeMap<u64, Vma>,
    /// Per-process guest page table.
    pub(crate) pt: PageTable<Gva, Gpa>,
    /// Bump pointer for mmap placement.
    mmap_cursor: u64,
    /// Guest-segment registers for this process, if established.
    pub(crate) segment: Option<Segment<Gva, Gpa>>,
    /// The contiguous guest-physical backing of the segment.
    pub(crate) segment_backing: Option<AddrRange<Gpa>>,
    /// Registered guard pages (4 KiB page base addresses) inside the
    /// primary region, escaped from the guest segment.
    pub(crate) guards: std::collections::BTreeSet<u64>,
    /// Pages currently swapped out (page base addresses).
    pub(crate) swapped: std::collections::BTreeSet<u64>,
    /// Swap-ins serviced (pages brought back by faults).
    pub(crate) swap_ins: u64,
    /// Demand faults serviced.
    pub(crate) faults: u64,
    /// 2 MiB THP promotions performed.
    pub(crate) thp_promotions: u64,
}

/// Base of the mmap area (matches a typical x86-64 layout scaled down).
const MMAP_BASE: u64 = 0x1000_0000;
/// Base of the primary-region area, far from ordinary mmaps.
pub(crate) const PRIMARY_BASE: u64 = 0x100_0000_0000;

impl Process {
    pub(crate) fn new(pid: Pid, policy: PageSizePolicy, pt: PageTable<Gva, Gpa>) -> Self {
        Process {
            pid,
            policy,
            vmas: BTreeMap::new(),
            pt,
            mmap_cursor: MMAP_BASE,
            segment: None,
            segment_backing: None,
            guards: std::collections::BTreeSet::new(),
            swapped: std::collections::BTreeSet::new(),
            swap_ins: 0,
            faults: 0,
            thp_promotions: 0,
        }
    }

    /// Process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Page-size policy.
    pub fn policy(&self) -> PageSizePolicy {
        self.policy
    }

    /// The process's guest page table (shared reference, e.g. for building
    /// an MMU context).
    pub fn page_table(&self) -> &PageTable<Gva, Gpa> {
        &self.pt
    }

    /// Established guest segment, if any.
    pub fn segment(&self) -> Option<Segment<Gva, Gpa>> {
        self.segment
    }

    /// Contiguous guest-physical range backing the segment, if any.
    pub fn segment_backing(&self) -> Option<AddrRange<Gpa>> {
        self.segment_backing
    }

    /// Demand faults serviced for this process.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// THP promotions performed for this process.
    pub fn thp_promotions(&self) -> u64 {
        self.thp_promotions
    }

    /// The VMA containing `va`, if any.
    pub fn vma_at(&self, va: Gva) -> Option<&Vma> {
        let (_, vma) = self.vmas.range(..=va.as_u64()).next_back()?;
        vma.range.contains(va).then_some(vma)
    }

    /// Whether the page containing `va` is currently swapped out.
    pub fn is_swapped(&self, va: Gva) -> bool {
        self.swapped.contains(&(va.as_u64() & !0xfff))
    }

    /// Swap-ins serviced for this process.
    pub fn swap_ins(&self) -> u64 {
        self.swap_ins
    }

    /// Whether the page containing `va` is a registered guard page.
    pub fn is_guard(&self, va: Gva) -> bool {
        self.guards.contains(&(va.as_u64() & !0xfff))
    }

    /// The process's primary region, if declared.
    pub fn primary_region(&self) -> Option<&Vma> {
        self.vmas.values().find(|v| v.primary)
    }

    /// Iterates over the VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    pub(crate) fn add_vma(&mut self, vma: Vma) {
        debug_assert!(
            !self.vmas.values().any(|v| v.range.overlaps(&vma.range)),
            "overlapping VMA"
        );
        self.vmas.insert(vma.range.start().as_u64(), vma);
    }

    /// Picks a placement for `len` bytes, aligned to `align`.
    pub(crate) fn place_mmap(&mut self, len: u64, align: u64) -> AddrRange<Gva> {
        let start = Gva::new(self.mmap_cursor).align_up(align);
        self.mmap_cursor = start.as_u64() + len;
        AddrRange::from_start_len(start, len)
    }
}
