//! Guest-OS error type.

use core::fmt;

use mv_phys::PhysError;
use mv_pt::PtError;

/// Errors surfaced by guest-OS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OsError {
    /// No such process.
    NoSuchProcess {
        /// The unknown pid.
        pid: u32,
    },
    /// The faulting address is not inside any VMA (a real SIGSEGV).
    SegmentationFault {
        /// Raw faulting address.
        va: u64,
    },
    /// Guest physical memory is too fragmented for a contiguous
    /// reservation; self-ballooning or compaction is needed.
    Fragmented {
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous run currently available.
        largest_run: u64,
    },
    /// The process has no primary region to back with a segment.
    NoPrimaryRegion {
        /// The pid lacking one.
        pid: u32,
    },
    /// Memory hotplug / unplug failed (range busy or offline).
    Hotplug {
        /// What went wrong.
        what: &'static str,
    },
    /// The page cannot be swapped in the current mode (Table II: guest
    /// swapping is limited to memory outside direct segments under
    /// Guest/Dual Direct).
    SwapPrecluded {
        /// Raw page address.
        va: u64,
        /// What stands in the way.
        why: &'static str,
    },
    /// The faulting address is a registered guard page (Section V: the
    /// escape filter can implement pages with different protection).
    GuardPageHit {
        /// Raw guard-page address.
        va: u64,
    },
    /// Out of guest physical memory.
    Phys(PhysError),
    /// Page-table manipulation failed (indicates an OS bug).
    PageTable(PtError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NoSuchProcess { pid } => write!(f, "no such process {pid}"),
            OsError::SegmentationFault { va } => write!(f, "segmentation fault at {va:#x}"),
            OsError::Fragmented {
                requested,
                largest_run,
            } => write!(
                f,
                "guest memory fragmented: need {requested:#x} contiguous, largest run {largest_run:#x}"
            ),
            OsError::NoPrimaryRegion { pid } => write!(f, "process {pid} has no primary region"),
            OsError::Hotplug { what } => write!(f, "memory hotplug failed: {what}"),
            OsError::GuardPageHit { va } => write!(f, "guard page hit at {va:#x}"),
            OsError::SwapPrecluded { va, why } => {
                write!(f, "cannot swap page at {va:#x}: {why}")
            }
            OsError::Phys(e) => write!(f, "guest physical memory error: {e}"),
            OsError::PageTable(e) => write!(f, "guest page-table error: {e}"),
        }
    }
}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Phys(e) => Some(e),
            OsError::PageTable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysError> for OsError {
    fn from(e: PhysError) -> Self {
        match e {
            PhysError::Fragmented {
                requested,
                largest_free_run,
            } => OsError::Fragmented {
                requested,
                largest_run: largest_free_run,
            },
            other => OsError::Phys(other),
        }
    }
}

impl From<PtError> for OsError {
    fn from(e: PtError) -> Self {
        OsError::PageTable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_error_converts_specially() {
        let e = OsError::from(PhysError::Fragmented {
            requested: 100,
            largest_free_run: 10,
        });
        assert!(matches!(e, OsError::Fragmented { requested: 100, largest_run: 10 }));
        let e = OsError::from(PhysError::OutOfMemory { requested: 1, free: 0 });
        assert!(matches!(e, OsError::Phys(_)));
    }

    #[test]
    fn display_is_informative() {
        assert!(OsError::SegmentationFault { va: 0x1234 }
            .to_string()
            .contains("0x1234"));
    }
}
