//! The guest OS: boot layout, demand paging, primary regions, hotplug.

use std::collections::HashMap;

use mv_core::Segment;
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{
    layout::{IO_GAP_END, IO_GAP_START},
    AddrRange, Gpa, Gva, PageSize, Prot,
};

use crate::balloon::BalloonDriver;
use crate::process::{PageSizePolicy, Pid, Process, Vma, PRIMARY_BASE};
use crate::OsError;

/// Boot-time configuration of a guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestConfig {
    /// Guest memory online at boot.
    pub installed_bytes: u64,
    /// Extra guest-physical address span kept offline for hotplug-add
    /// (the prototype extends the second KVM slot this way, Section VI.C).
    pub hotplug_capacity: u64,
    /// Model the x86-64 I/O gap at [3 GiB, 4 GiB).
    pub model_io_gap: bool,
    /// Contiguous guest-physical bytes reserved at startup for direct
    /// segments (Section VI.A); 0 disables the reservation.
    pub boot_reservation: u64,
}

impl GuestConfig {
    /// A small flat guest: no I/O gap, no hotplug, no reservation.
    /// Convenient for unit tests.
    pub fn small(installed_bytes: u64) -> Self {
        GuestConfig {
            installed_bytes,
            hotplug_capacity: 0,
            model_io_gap: false,
            boot_reservation: 0,
        }
    }

    /// A realistic guest with the I/O gap modeled.
    pub fn with_io_gap(installed_bytes: u64, hotplug_capacity: u64) -> Self {
        GuestConfig {
            installed_bytes,
            hotplug_capacity,
            model_io_gap: true,
            boot_reservation: 0,
        }
    }
}

/// What a serviced demand fault mapped — reported so the simulation can
/// drive shadow-page-table updates (Section IX.D) and nested mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultFix {
    /// Base of the newly mapped virtual page.
    pub va_page: Gva,
    /// Guest-physical frame it maps to.
    pub gpa: Gpa,
    /// Mapping size.
    pub size: PageSize,
    /// Protection.
    pub prot: Prot,
}

/// The guest operating system.
#[derive(Debug)]
pub struct GuestOs {
    mem: PhysMem<Gpa>,
    processes: HashMap<Pid, Process>,
    next_pid: Pid,
    /// Offline region available for hotplug-add (start advances as added).
    offline: Option<AddrRange<Gpa>>,
    /// Regions removed by hot-unplug (e.g. low memory below the I/O gap).
    unplugged: Vec<AddrRange<Gpa>>,
    /// Remaining boot-time contiguous reservation.
    reservation: Option<AddrRange<Gpa>>,
    /// The balloon driver.
    pub balloon: BalloonDriver,
    config: GuestConfig,
}

impl GuestOs {
    /// Boots a guest with the given memory layout.
    ///
    /// With `model_io_gap`, installed memory is split KVM-style: up to
    /// 3 GiB below the gap and the remainder starting at 4 GiB. The
    /// hotplug-capacity region sits above installed high memory, offline.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Hotplug`] if `installed_bytes` is 0, and
    /// propagates the typed allocation error if the boot-time carves or the
    /// contiguous boot reservation cannot be satisfied (a configuration
    /// error, or an injected fault during chaos runs).
    pub fn boot(config: GuestConfig) -> Result<Self, OsError> {
        if config.installed_bytes == 0 {
            return Err(OsError::Hotplug {
                what: "guest booted with zero installed memory",
            });
        }
        let low = if config.model_io_gap {
            config.installed_bytes.min(IO_GAP_START.as_u64())
        } else {
            config.installed_bytes
        };
        let high_installed = config.installed_bytes - low;
        let needs_high = config.model_io_gap && (high_installed + config.hotplug_capacity > 0);
        let span = if needs_high {
            IO_GAP_END.as_u64() + high_installed + config.hotplug_capacity
        } else {
            low + config.hotplug_capacity
        };
        let mut mem: PhysMem<Gpa> = PhysMem::new(span);

        // Carve everything that is not online low/high memory.
        if needs_high {
            // Uninstalled space below the gap, the gap itself, and the
            // offline hotplug area.
            if low < IO_GAP_START.as_u64() {
                mem.carve_range(&AddrRange::new(Gpa::new(low), IO_GAP_START))?;
            }
            mem.carve_range(&AddrRange::new(IO_GAP_START, IO_GAP_END))?;
        }
        let offline = if config.hotplug_capacity > 0 {
            let start = if needs_high {
                IO_GAP_END.as_u64() + high_installed
            } else {
                low
            };
            let r = AddrRange::from_start_len(Gpa::new(start), config.hotplug_capacity);
            mem.carve_range(&r)?;
            Some(r)
        } else {
            None
        };

        let reservation = if config.boot_reservation > 0 {
            Some(mem.reserve_contiguous(config.boot_reservation, PageSize::Size2M)?)
        } else {
            None
        };

        Ok(GuestOs {
            mem,
            processes: HashMap::new(),
            next_pid: 1,
            offline,
            unplugged: Vec::new(),
            reservation,
            balloon: BalloonDriver::new(),
            config,
        })
    }

    /// The guest-physical memory.
    pub fn mem(&self) -> &PhysMem<Gpa> {
        &self.mem
    }

    /// Mutable access to guest-physical memory (used by the VMM model for
    /// self-ballooning coordination and by tests).
    pub fn mem_mut(&mut self) -> &mut PhysMem<Gpa> {
        &mut self.mem
    }

    /// Boot configuration.
    pub fn config(&self) -> &GuestConfig {
        &self.config
    }

    /// Remaining boot-time reservation, if any.
    pub fn reservation(&self) -> Option<AddrRange<Gpa>> {
        self.reservation
    }

    /// Creates a process with the given page-size policy, returning its
    /// pid (used as the TLB ASID).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::PageTable`] if guest memory cannot hold a fresh
    /// root table.
    pub fn create_process(&mut self, policy: PageSizePolicy) -> Result<Pid, OsError> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let pt = PageTable::new(&mut self.mem)?;
        self.processes.insert(pid, Process::new(pid, policy, pt));
        Ok(pid)
    }

    /// The process with this pid.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown (callers hold pids they created).
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[&pid]
    }

    /// Maps `len` bytes of anonymous memory, returning the start address.
    /// Pages materialize on demand via [`Self::handle_page_fault`].
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchProcess`] for an unknown pid.
    pub fn mmap(&mut self, pid: Pid, len: u64, prot: Prot) -> Result<Gva, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let align = match proc.policy() {
            PageSizePolicy::Fixed(s) => s.bytes(),
            PageSizePolicy::Thp => PageSize::Size2M.bytes(),
        };
        let range = proc.place_mmap(len, align);
        proc.add_vma(Vma {
            range,
            prot,
            primary: false,
        });
        Ok(range.start())
    }

    /// Declares the process's primary region: `len` bytes of uniformly
    /// `RW` anonymous memory at a fixed high address, eligible for guest-
    /// segment backing.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchProcess`] for an unknown pid.
    pub fn create_primary_region(&mut self, pid: Pid, len: u64) -> Result<Gva, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let range = AddrRange::from_start_len(Gva::new(PRIMARY_BASE), len);
        proc.add_vma(Vma {
            range,
            prot: Prot::RW,
            primary: true,
        });
        Ok(range.start())
    }

    /// Establishes the guest segment for the process's primary region:
    /// finds contiguous guest-physical backing (boot reservation first,
    /// then the general pool) and programs BASE_G/LIMIT_G/OFFSET_G.
    ///
    /// # Errors
    ///
    /// * [`OsError::NoPrimaryRegion`] — process declared none.
    /// * [`OsError::Fragmented`] — no contiguous backing available; the
    ///   caller should invoke self-ballooning (Section IV) and retry.
    pub fn setup_guest_segment(&mut self, pid: Pid) -> Result<Segment<Gva, Gpa>, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let region = proc
            .primary_region()
            .ok_or(OsError::NoPrimaryRegion { pid })?
            .range;
        let backing = Self::take_backing(&mut self.mem, &mut self.reservation, region.len())?;
        let seg = Segment::map(region, backing.start());
        proc.segment = Some(seg);
        proc.segment_backing = Some(backing);
        Ok(seg)
    }

    fn take_backing(
        mem: &mut PhysMem<Gpa>,
        reservation: &mut Option<AddrRange<Gpa>>,
        len: u64,
    ) -> Result<AddrRange<Gpa>, OsError> {
        if let Some(res) = reservation {
            if res.len() >= len {
                let taken = AddrRange::from_start_len(res.start(), len);
                *reservation = (res.len() > len)
                    .then(|| AddrRange::new(taken.end(), res.end()));
                return Ok(taken);
            }
        }
        Ok(mem.reserve_contiguous(len, PageSize::Size4K)?)
    }

    /// Swaps out the 4 KiB page at `va`: the mapping is removed and the
    /// frame freed; the next access faults and swaps the page back in.
    ///
    /// Table II: under Guest/Dual Direct, guest swapping is *limited* —
    /// segment-covered pages translate by arithmetic, never fault, and so
    /// cannot be swapped.
    ///
    /// # Errors
    ///
    /// * [`OsError::SwapPrecluded`] — the page is covered by the process's
    ///   guest segment.
    /// * [`OsError::SegmentationFault`] — the page is not mapped, so there
    ///   is nothing to swap out.
    pub fn swap_out(&mut self, pid: Pid, va: Gva) -> Result<(), OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let va_page = Gva::new(va.as_u64() & !0xfff);
        if proc.segment.is_some_and(|s| s.contains(va_page)) {
            return Err(OsError::SwapPrecluded {
                va: va_page.as_u64(),
                why: "page is covered by the guest segment (Table II)",
            });
        }
        let Some(t) = proc.pt.translate(&self.mem, va_page) else {
            return Err(OsError::SegmentationFault { va: va.as_u64() });
        };
        if t.size != PageSize::Size4K {
            return Err(OsError::SwapPrecluded {
                va: va_page.as_u64(),
                why: "huge mappings are not swapped in this model",
            });
        }
        let frame = proc.pt.unmap(&mut self.mem, va_page, PageSize::Size4K)?;
        self.mem.free(frame, PageSize::Size4K)?;
        proc.swapped.insert(va_page.as_u64());
        Ok(())
    }

    /// Registers guard pages inside the process's segment-backed primary
    /// region using a guest-level escape filter (Section V: "it may be
    /// useful to have escape filters at both levels of translation so the
    /// guest OS can escape pages as well"). Accesses to a guard page
    /// escape the segment, miss in the page table, and surface
    /// [`OsError::GuardPageHit`]; filter false positives are simply
    /// demand-mapped to their segment-computed frames, so they stay
    /// transparent.
    ///
    /// Returns the filter to program into the MMU
    /// ([`mv_core::Mmu::set_guest_escape_filter`]).
    ///
    /// # Errors
    ///
    /// * [`OsError::NoPrimaryRegion`] — no segment-backed region exists.
    pub fn protect_guard_pages(
        &mut self,
        pid: Pid,
        pages: &[Gva],
    ) -> Result<mv_core::EscapeFilter, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let seg = proc.segment.ok_or(OsError::NoPrimaryRegion { pid })?;
        let mut filter = mv_core::EscapeFilter::new(0x6a4d);
        for &va in pages {
            assert!(seg.contains(va), "guard pages must lie inside the segment");
            let page = va.as_u64() & !0xfff;
            proc.guards.insert(page);
            filter.insert(page);
        }
        Ok(filter)
    }

    /// Services a demand fault at `va`: allocates a frame per the process's
    /// page-size policy and maps it. For addresses covered by the guest
    /// segment, maps the segment-computed frame (used for pages that escape
    /// the segment).
    ///
    /// # Errors
    ///
    /// * [`OsError::SegmentationFault`] — no VMA covers `va`.
    /// * [`OsError::Phys`] — out of guest memory.
    pub fn handle_page_fault(&mut self, pid: Pid, va: Gva) -> Result<FaultFix, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        if proc.is_guard(va) {
            return Err(OsError::GuardPageHit { va: va.as_u64() });
        }
        if proc.swapped.remove(&(va.as_u64() & !0xfff)) {
            proc.swap_ins += 1;
        }
        let vma = proc
            .vma_at(va)
            .ok_or(OsError::SegmentationFault { va: va.as_u64() })?
            .clone();

        // Escaped (or pre-segment) pages of a segment-backed region map to
        // their segment-computed frame so the address-space layout stays
        // coherent.
        if let Some(seg) = proc.segment {
            if let Some(gpa) = seg.translate(va) {
                let va_page = Gva::new(va.as_u64() & !0xfff);
                let gpa_page = Gpa::new(gpa.as_u64() & !0xfff);
                proc.pt
                    .map(&mut self.mem, va_page, gpa_page, PageSize::Size4K, vma.prot)?;
                proc.faults += 1;
                return Ok(FaultFix {
                    va_page,
                    gpa: gpa_page,
                    size: PageSize::Size4K,
                    prot: vma.prot,
                });
            }
        }

        // THP: try to map the whole aligned 2 MiB region in one shot when
        // the VMA covers it and a huge frame is available.
        if matches!(proc.policy(), PageSizePolicy::Thp) {
            let huge_va = Gva::new(va.as_u64() & !PageSize::Size2M.offset_mask());
            let huge_range = AddrRange::from_start_len(huge_va, PageSize::Size2M.bytes());
            if vma.range.contains_range(&huge_range) {
                if let Ok(frame) = self.mem.alloc(PageSize::Size2M) {
                    proc.pt
                        .map(&mut self.mem, huge_va, frame, PageSize::Size2M, vma.prot)?;
                    proc.faults += 1;
                    proc.thp_promotions += 1;
                    return Ok(FaultFix {
                        va_page: huge_va,
                        gpa: frame,
                        size: PageSize::Size2M,
                        prot: vma.prot,
                    });
                }
            }
        }

        let size = proc.policy().fault_size();
        let va_page = Gva::new(va.as_u64() & !size.offset_mask());
        let frame = self.mem.alloc(size)?;
        proc.pt.map(&mut self.mem, va_page, frame, size, vma.prot)?;
        proc.faults += 1;
        Ok(FaultFix {
            va_page,
            gpa: frame,
            size,
            prot: vma.prot,
        })
    }

    /// Pre-faults every page of `[va, va+len)` — applications that
    /// explicitly request huge pages typically touch their dataset eagerly.
    ///
    /// # Errors
    ///
    /// Propagates the first fault-servicing failure.
    pub fn populate(&mut self, pid: Pid, va: Gva, len: u64) -> Result<(), OsError> {
        let proc = self
            .processes
            .get(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let step = match proc.policy() {
            PageSizePolicy::Fixed(s) => s.bytes(),
            PageSizePolicy::Thp => PageSize::Size2M.bytes(),
        };
        let mut cursor = va.as_u64() & !(step - 1);
        while cursor < va.as_u64() + len {
            let proc = self
                .processes
                .get(&pid)
                .ok_or(OsError::NoSuchProcess { pid })?;
            if proc.pt.translate(&self.mem, Gva::new(cursor)).is_none() {
                self.handle_page_fault(pid, Gva::new(cursor))?;
            }
            cursor += step;
        }
        Ok(())
    }

    /// Borrows the pieces an MMU context needs: the process page table and
    /// guest memory.
    pub fn pt_and_mem(&self, pid: Pid) -> (&PageTable<Gva, Gpa>, &PhysMem<Gpa>) {
        (&self.processes[&pid].pt, &self.mem)
    }

    /// Looks up the already-established mapping covering `va` and returns
    /// it as the page-aligned [`FaultFix`] a shadow pager would apply.
    /// `None` when the guest genuinely has no mapping (a real fault).
    ///
    /// This is the "hidden fault" probe of shadow paging (Section IX.D):
    /// the hardware faulted on a stale shadow entry, and the VMM must
    /// distinguish a guest-visible fault from a shadow-only resync.
    pub fn lookup_fix(&self, pid: Pid, va: Gva) -> Option<FaultFix> {
        let proc = self.processes.get(&pid)?;
        let t = proc.pt.translate(&self.mem, va)?;
        Some(FaultFix {
            va_page: Gva::new(va.as_u64() & !t.size.offset_mask()),
            gpa: t.page_base,
            size: t.size,
            prot: t.prot,
        })
    }

    /// Every leaf mapping of the process's page table as [`FaultFix`]es,
    /// in walk order — the bulk form a shadow pager syncs from at attach
    /// time.
    pub fn leaf_fixes(&self, pid: Pid) -> Vec<FaultFix> {
        let mut fixes = Vec::new();
        if let Some(proc) = self.processes.get(&pid) {
            proc.pt.for_each_leaf(&self.mem, &mut |va, pte, size| {
                fixes.push(FaultFix {
                    va_page: va,
                    gpa: pte.addr(),
                    size,
                    prot: pte.prot(),
                });
            });
        }
        fixes
    }

    /// Hotplug-adds `bytes` from the offline region, returning the newly
    /// online contiguous range (the VMM's hot-add path, Section VI.C).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Hotplug`] if the offline region is exhausted.
    pub fn hotplug_add(&mut self, bytes: u64) -> Result<AddrRange<Gpa>, OsError> {
        let offline = self.offline.as_mut().ok_or(OsError::Hotplug {
            what: "no offline capacity configured",
        })?;
        if offline.len() < bytes {
            return Err(OsError::Hotplug {
                what: "offline capacity exhausted",
            });
        }
        let added = AddrRange::from_start_len(offline.start(), bytes);
        *offline = AddrRange::new(added.end(), offline.end());
        self.mem
            .release_range(&added)
            .map_err(|_| OsError::Hotplug {
                what: "offline range unexpectedly busy",
            })?;
        Ok(added)
    }

    /// Hot-unplugs low memory, keeping only `keep` bytes at the bottom
    /// (Section VI.C found 256 MiB suffices to boot Linux). The removed
    /// range must currently be free. Returns the bytes removed so the VMM
    /// can extend high memory by the same amount.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Hotplug`] if the low range is still in use.
    pub fn unplug_low_memory(&mut self, keep: u64) -> Result<u64, OsError> {
        let low_end = if self.config.model_io_gap {
            self.config.installed_bytes.min(IO_GAP_START.as_u64())
        } else {
            self.config.installed_bytes
        };
        if keep >= low_end {
            return Ok(0);
        }
        let range = AddrRange::new(Gpa::new(keep), Gpa::new(low_end));
        self.mem.carve_range(&range).map_err(|_| OsError::Hotplug {
            what: "low memory still in use",
        })?;
        self.unplugged.push(range);
        Ok(range.len())
    }

    /// Unmaps the page covering `va` (any size), freeing its frame unless
    /// it belongs to the process's segment backing. Returns the unmapped
    /// page's base and size, or `None` if nothing was mapped.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchProcess`] for an unknown pid.
    pub fn unmap_page(&mut self, pid: Pid, va: Gva) -> Result<Option<(Gva, PageSize)>, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess { pid })?;
        let Some(t) = proc.pt.translate(&self.mem, va) else {
            return Ok(None);
        };
        let va_page = Gva::new(va.as_u64() & !t.size.offset_mask());
        let frame = proc.pt.unmap(&mut self.mem, va_page, t.size)?;
        let in_segment = proc
            .segment_backing
            .as_ref()
            .is_some_and(|b| b.contains(frame));
        if !in_segment {
            self.mem.free(frame, t.size)?;
        }
        Ok(Some((va_page, t.size)))
    }

    /// Inflates the balloon by `frames` 4 KiB frames (see
    /// [`BalloonDriver::inflate`]); a convenience that splits the borrow of
    /// the driver and guest memory.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Phys`] if the guest lacks free memory.
    pub fn balloon_inflate(&mut self, frames: usize) -> Result<Vec<Gpa>, OsError> {
        self.balloon.inflate(&mut self.mem, frames)
    }

    /// Deflates the balloon fully (see [`BalloonDriver::deflate_all`]); a
    /// convenience that splits the borrow of the driver and guest memory.
    ///
    /// # Errors
    ///
    /// Fails only on frame-accounting corruption.
    pub fn balloon_deflate_all(&mut self) -> Result<usize, OsError> {
        self.balloon.deflate_all(&mut self.mem)
    }

    /// Remaining offline hotplug capacity in bytes.
    pub fn offline_capacity(&self) -> u64 {
        self.offline.as_ref().map_or(0, AddrRange::len)
    }

    /// Ranges removed by hot-unplug so far.
    pub fn unplugged(&self) -> &[AddrRange<Gpa>] {
        &self.unplugged
    }
}
