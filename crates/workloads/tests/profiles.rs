//! Statistical validation of the workload generators: the locality,
//! write-mix, churn, and duplication profiles that the paper's experiments
//! depend on must order the workloads the way the real benchmarks do.

use mv_workloads::WorkloadKind;
use std::collections::HashSet;

const ARENA: u64 = 256 << 20;
const SAMPLES: usize = 50_000;

fn distinct_pages(kind: WorkloadKind) -> usize {
    let mut w = kind.build(ARENA, 11);
    let mut pages = HashSet::new();
    for _ in 0..SAMPLES {
        pages.insert(w.next_access().offset >> 12);
    }
    pages.len()
}

fn write_fraction(kind: WorkloadKind) -> f64 {
    let mut w = kind.build(ARENA, 11);
    let writes = (0..SAMPLES).filter(|_| w.next_access().write).count();
    writes as f64 / SAMPLES as f64
}

#[test]
fn every_workload_is_deterministic_and_in_bounds() {
    for kind in WorkloadKind::ALL {
        let collect = |seed: u64| {
            let mut w = kind.build(ARENA, seed);
            (0..2000)
                .map(|_| {
                    let a = w.next_access();
                    assert!(a.offset < ARENA, "{kind} escaped its arena");
                    a.offset
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5), "{kind} must be deterministic");
    }
}

#[test]
fn random_workloads_touch_more_pages_than_streaming_ones() {
    // TLB-hostile workloads must show wider page working sets in a fixed
    // window than the streaming/hot-set ones.
    let gups = distinct_pages(WorkloadKind::Gups);
    let canneal = distinct_pages(WorkloadKind::Canneal);
    let stream = distinct_pages(WorkloadKind::Streamcluster);
    assert!(
        gups > 4 * stream,
        "gups ({gups}) must dwarf streamcluster ({stream})"
    );
    assert!(
        canneal > 4 * stream,
        "canneal ({canneal}) must dwarf streamcluster ({stream})"
    );
}

#[test]
fn write_mixes_match_the_modeled_applications() {
    // GUPS is read-modify-write: exactly half the references write.
    let gups = write_fraction(WorkloadKind::Gups);
    assert!((gups - 0.5).abs() < 0.02, "gups write mix {gups}");
    // memcached is GET-dominated.
    let mc = write_fraction(WorkloadKind::Memcached);
    assert!(mc > 0.02 && mc < 0.25, "memcached write mix {mc}");
    // CG's SpMV only reads.
    assert_eq!(write_fraction(WorkloadKind::NpbCg), 0.0);
    // GemsFDTD updates fields heavily.
    assert!(write_fraction(WorkloadKind::GemsFdtd) > 0.3);
}

#[test]
fn churn_ordering_matches_section_9d_categories() {
    let churn = |k: WorkloadKind| k.build(ARENA, 0).churn_per_million();
    // The paper's shadow-hostile category...
    let hostile = [
        churn(WorkloadKind::Memcached),
        churn(WorkloadKind::GemsFdtd),
        churn(WorkloadKind::Omnetpp),
        churn(WorkloadKind::Canneal),
    ];
    // ...must churn at least 100x the friendly category.
    let friendly = [
        churn(WorkloadKind::Graph500),
        churn(WorkloadKind::NpbCg),
        churn(WorkloadKind::Gups),
        churn(WorkloadKind::Mcf),
        churn(WorkloadKind::CactusAdm),
        churn(WorkloadKind::Streamcluster),
    ];
    let min_hostile = hostile.iter().min().unwrap();
    let max_friendly = friendly.iter().max().unwrap();
    assert!(
        min_hostile >= &(100 * max_friendly.max(&1)),
        "churn categories overlap: hostile min {min_hostile}, friendly max {max_friendly}"
    );
    // And memcached leads, as the paper's worst case.
    assert_eq!(hostile.iter().max().unwrap(), &churn(WorkloadKind::Memcached));
}

#[test]
fn duplicate_fractions_are_small_for_big_memory() {
    // Section IX.E's finding depends on big-memory data being unique.
    for k in WorkloadKind::BIG_MEMORY {
        let d = k.build(ARENA, 0).duplicate_fraction();
        assert!(d <= 0.03, "{k} duplicate fraction {d} too high");
    }
}

#[test]
fn fingerprints_are_instance_stable_and_pool_shared() {
    let a = WorkloadKind::Graph500.build(ARENA, 1);
    let b = WorkloadKind::Graph500.build(ARENA, 2);
    // Instance-0 pool pages are shared even across workload types.
    let m = WorkloadKind::Memcached.build(ARENA, 3);
    assert_eq!(
        a.page_fingerprint_instanced(0, 1),
        m.page_fingerprint_instanced(0, 2),
        "the common pool models OS pages shared by everyone"
    );
    // Deep pages differ across instances of the same workload...
    assert_ne!(
        a.page_fingerprint_instanced(50_000, 1),
        b.page_fingerprint_instanced(50_000, 2)
    );
    // ...but are stable within an instance.
    assert_eq!(
        a.page_fingerprint_instanced(50_000, 1),
        a.page_fingerprint_instanced(50_000, 1)
    );
}

#[test]
fn cycles_per_access_reflect_memory_boundness() {
    // The calibration constants must keep the DRAM-bound microbenchmark
    // cheapest per access and the compute-heavy codes most expensive.
    let cpa = |k: WorkloadKind| k.build(ARENA, 0).cycles_per_access();
    assert!(cpa(WorkloadKind::Gups) < cpa(WorkloadKind::Memcached));
    assert!(cpa(WorkloadKind::Graph500) < cpa(WorkloadKind::NpbCg));
    for k in WorkloadKind::ALL {
        let c = cpa(k);
        assert!((50.0..1000.0).contains(&c), "{k} cpa {c} out of plausible range");
    }
}
