//! Big-memory workloads: GUPS, graph500 BFS, memcached, NPB:CG.

use mv_types::rng::StdRng;
use mv_types::rng::Rng;

use crate::pattern::{uniform, Access, Cursor};
use crate::Workload;

/// GUPS: the HPC Challenge random-access micro-benchmark. Uniform random
/// 8-byte read-modify-writes over a giant table — the worst possible TLB
/// behavior, which is why the paper plots it on its own scaled axis.
#[derive(Debug)]
pub struct Gups {
    arena: u64,
    rng: StdRng,
    pending_write: Option<u64>,
}

impl Gups {
    /// Creates a GUPS instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Gups {
            arena,
            rng: StdRng::seed_from_u64(seed),
            pending_write: None,
        }
    }
}

impl Workload for Gups {
    fn name(&self) -> &'static str {
        "gups"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        // Read-modify-write: each random location is read then written.
        if let Some(off) = self.pending_write.take() {
            return Access::write(off);
        }
        let off = uniform(&mut self.rng, self.arena);
        self.pending_write = Some(off);
        Access::read(off)
    }

    fn cycles_per_access(&self) -> f64 {
        104.0 // DRAM-bound random updates: each access is itself a memory miss
    }

    fn churn_per_million(&self) -> u64 {
        0 // one allocation up front, never released
    }

    fn duplicate_fraction(&self) -> f64 {
        0.005
    }
}

/// graph500: BFS over a synthetic power-law graph. Alternates frontier
/// pops (sequential), adjacency-list scans (short sequential bursts at
/// random positions), and visited-bitmap probes (random) — mostly-random
/// behavior with short runs, matching its high measured TLB overhead.
#[derive(Debug)]
pub struct Graph500 {
    arena: u64,
    rng: StdRng,
    frontier: Cursor,
    /// Remaining references in the current adjacency burst.
    burst_left: u32,
    burst_pos: u64,
}

impl Graph500 {
    /// Creates a BFS instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Graph500 {
            arena,
            rng: StdRng::seed_from_u64(seed),
            frontier: Cursor::new(arena / 16, 8),
            burst_left: 0,
            burst_pos: 0,
        }
    }
}

impl Workload for Graph500 {
    fn name(&self) -> &'static str {
        "graph500"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.burst_pos = (self.burst_pos + 8) % self.arena;
            return Access::read(self.burst_pos);
        }
        match self.rng.gen_range(0..10u32) {
            // Pop from the frontier queue (sequential region).
            0..=1 => Access::read(self.frontier.next()),
            // Probe & set the visited bitmap at a random vertex.
            2..=3 => Access::write(uniform(&mut self.rng, self.arena / 64)),
            // Start scanning a random vertex's adjacency list: a short
            // sequential burst (power-law degree, clamped).
            _ => {
                self.burst_left = self.rng.gen_range(1..16);
                self.burst_pos = uniform(&mut self.rng, self.arena);
                Access::read(self.burst_pos)
            }
        }
    }

    fn cycles_per_access(&self) -> f64 {
        83.0 // mixed DRAM/cache accesses, calibrated to the paper's 28% native-4K overhead
    }

    fn churn_per_million(&self) -> u64 {
        5 // the graph is built once
    }

    fn duplicate_fraction(&self) -> f64 {
        0.01
    }
}

/// memcached: in-memory key-value cache. Each operation hashes into a
/// bucket (random), walks a short chain, then reads (GET) or writes (SET)
/// the value body — plus constant slab allocator churn, which is what
/// hurts it so badly under shadow paging (29.2% in Section IX.D).
#[derive(Debug)]
pub struct Memcached {
    arena: u64,
    rng: StdRng,
    value_left: u32,
    value_pos: u64,
    value_write: bool,
}

impl Memcached {
    /// Creates a cache instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Memcached {
            arena,
            rng: StdRng::seed_from_u64(seed),
            value_left: 0,
            value_pos: 0,
            value_write: false,
        }
    }
}

impl Workload for Memcached {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        if self.value_left > 0 {
            self.value_left -= 1;
            self.value_pos = (self.value_pos + 64) % self.arena;
            return if self.value_write {
                Access::write(self.value_pos)
            } else {
                Access::read(self.value_pos)
            };
        }
        // Hash-table bucket probe in the first eighth of the arena, then a
        // value body elsewhere (values dominate the footprint).
        if self.rng.gen_bool(0.5) {
            Access::read(uniform(&mut self.rng, self.arena / 8))
        } else {
            self.value_write = self.rng.gen_bool(0.1); // 10% SETs
            self.value_left = self.rng.gen_range(1..8); // 64B–512B values
            self.value_pos = uniform(&mut self.rng, self.arena);
            if self.value_write {
                Access::write(self.value_pos)
            } else {
                Access::read(self.value_pos)
            }
        }
    }

    fn cycles_per_access(&self) -> f64 {
        233.0 // request processing amortizes each miss over more work
    }

    fn churn_per_million(&self) -> u64 {
        45_000 // slab allocation/eviction churn (drives the 29.2% shadow cost)
    }

    fn duplicate_fraction(&self) -> f64 {
        0.02
    }
}

/// NPB:CG — conjugate gradient: sequential sweeps over the sparse-matrix
/// arrays with random gathers into the dense vector, the classic
/// SpMV mix.
#[derive(Debug)]
pub struct NpbCg {
    arena: u64,
    rng: StdRng,
    matrix: Cursor,
    toggle: bool,
}

impl NpbCg {
    /// Creates a CG instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        NpbCg {
            arena,
            rng: StdRng::seed_from_u64(seed),
            matrix: Cursor::new(arena * 3 / 4, 8),
            toggle: false,
        }
    }
}

impl Workload for NpbCg {
    fn name(&self) -> &'static str {
        "npb:cg"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        self.toggle = !self.toggle;
        if self.toggle {
            // Sequential matrix value/index stream.
            Access::read(self.matrix.next())
        } else {
            // Random gather into the dense vector (last quarter).
            let vec_base = self.arena * 3 / 4;
            Access::read(vec_base + uniform(&mut self.rng, self.arena / 4))
        }
    }

    fn cycles_per_access(&self) -> f64 {
        278.0 // FLOP-heavy SpMV between gathers
    }

    fn churn_per_million(&self) -> u64 {
        2
    }

    fn duplicate_fraction(&self) -> f64 {
        0.01
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut w: Box<dyn Workload>, n: usize) {
        let fp = w.footprint();
        for _ in 0..n {
            let a = w.next_access();
            assert!(a.offset < fp, "{} escaped its arena", w.name());
        }
    }

    #[test]
    fn accesses_stay_in_bounds() {
        let arena = 16 << 20;
        exercise(Box::new(Gups::new(arena, 1)), 10_000);
        exercise(Box::new(Graph500::new(arena, 1)), 10_000);
        exercise(Box::new(Memcached::new(arena, 1)), 10_000);
        exercise(Box::new(NpbCg::new(arena, 1)), 10_000);
    }

    #[test]
    fn gups_is_read_modify_write() {
        let mut g = Gups::new(1 << 20, 7);
        let r = g.next_access();
        let w = g.next_access();
        assert!(!r.write);
        assert!(w.write);
        assert_eq!(r.offset, w.offset);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let collect = |seed| {
            let mut w = Graph500::new(1 << 20, seed);
            (0..100).map(|_| w.next_access().offset).collect::<Vec<_>>()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4));
    }

    #[test]
    fn gups_has_worse_locality_than_cg() {
        // Count distinct 4K pages touched in a fixed window: GUPS random
        // access must touch many more pages than CG's half-sequential mix.
        let distinct = |mut w: Box<dyn Workload>| {
            let mut pages = std::collections::HashSet::new();
            for _ in 0..20_000 {
                pages.insert(w.next_access().offset >> 12);
            }
            pages.len()
        };
        let arena = 256 << 20;
        let gups = distinct(Box::new(Gups::new(arena, 1)));
        let cg = distinct(Box::new(NpbCg::new(arena, 1)));
        assert!(gups > cg, "gups {gups} pages vs cg {cg} pages");
    }

    #[test]
    fn memcached_produces_writes() {
        let mut m = Memcached::new(1 << 20, 9);
        let writes = (0..10_000).filter(|_| m.next_access().write).count();
        assert!(writes > 100, "SET traffic must appear: {writes}");
    }

    #[test]
    fn fingerprints_share_only_the_duplicate_pool() {
        let g = Gups::new(16 << 20, 1);
        let m = Memcached::new(16 << 20, 1);
        // Page 0 is in both duplicate pools → identical fingerprints.
        assert_eq!(g.page_fingerprint(0), m.page_fingerprint(0));
        // A deep page is unique per workload.
        assert_ne!(g.page_fingerprint(3000), m.page_fingerprint(3000));
        // And stable.
        assert_eq!(g.page_fingerprint(3000), g.page_fingerprint(3000));
    }
}
