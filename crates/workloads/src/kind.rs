//! Workload factory and classification.

use crate::bigmem::{Graph500, Gups, Memcached, NpbCg};
use crate::compute::{CactusAdm, Canneal, GemsFdtd, Mcf, Omnetpp, Streamcluster};
use crate::Workload;

/// The ten Table V workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// HPCC GUPS random-access micro-benchmark.
    Gups,
    /// graph500 BFS.
    Graph500,
    /// memcached key-value cache.
    Memcached,
    /// NAS Parallel Benchmarks: CG.
    NpbCg,
    /// SPEC 2006 mcf.
    Mcf,
    /// SPEC 2006 omnetpp.
    Omnetpp,
    /// SPEC 2006 cactusADM.
    CactusAdm,
    /// SPEC 2006 GemsFDTD.
    GemsFdtd,
    /// PARSEC canneal.
    Canneal,
    /// PARSEC streamcluster.
    Streamcluster,
}

impl WorkloadKind {
    /// The big-memory workloads of the paper's Figures 1 and 11 (plus the
    /// GUPS micro-benchmark, plotted on its own axis).
    pub const BIG_MEMORY: [WorkloadKind; 4] = [
        WorkloadKind::Graph500,
        WorkloadKind::Memcached,
        WorkloadKind::NpbCg,
        WorkloadKind::Gups,
    ];

    /// The compute workloads of Figure 12.
    pub const COMPUTE: [WorkloadKind; 6] = [
        WorkloadKind::CactusAdm,
        WorkloadKind::GemsFdtd,
        WorkloadKind::Mcf,
        WorkloadKind::Omnetpp,
        WorkloadKind::Canneal,
        WorkloadKind::Streamcluster,
    ];

    /// All ten workloads.
    pub const ALL: [WorkloadKind; 10] = [
        WorkloadKind::Graph500,
        WorkloadKind::Memcached,
        WorkloadKind::NpbCg,
        WorkloadKind::Gups,
        WorkloadKind::CactusAdm,
        WorkloadKind::GemsFdtd,
        WorkloadKind::Mcf,
        WorkloadKind::Omnetpp,
        WorkloadKind::Canneal,
        WorkloadKind::Streamcluster,
    ];

    /// Whether the workload belongs to the big-memory category (has a
    /// primary region and benefits from guest segments).
    pub fn is_big_memory(self) -> bool {
        Self::BIG_MEMORY.contains(&self)
    }

    /// Instantiates the workload over `arena` bytes with a seed.
    pub fn build(self, arena: u64, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Gups => Box::new(Gups::new(arena, seed)),
            WorkloadKind::Graph500 => Box::new(Graph500::new(arena, seed)),
            WorkloadKind::Memcached => Box::new(Memcached::new(arena, seed)),
            WorkloadKind::NpbCg => Box::new(NpbCg::new(arena, seed)),
            WorkloadKind::Mcf => Box::new(Mcf::new(arena, seed)),
            WorkloadKind::Omnetpp => Box::new(Omnetpp::new(arena, seed)),
            WorkloadKind::CactusAdm => Box::new(CactusAdm::new(arena, seed)),
            WorkloadKind::GemsFdtd => Box::new(GemsFdtd::new(arena, seed)),
            WorkloadKind::Canneal => Box::new(Canneal::new(arena, seed)),
            WorkloadKind::Streamcluster => Box::new(Streamcluster::new(arena, seed)),
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Gups => "gups",
            WorkloadKind::Graph500 => "graph500",
            WorkloadKind::Memcached => "memcached",
            WorkloadKind::NpbCg => "npb:cg",
            WorkloadKind::Mcf => "mcf",
            WorkloadKind::Omnetpp => "omnetpp",
            WorkloadKind::CactusAdm => "cactusADM",
            WorkloadKind::GemsFdtd => "GemsFDTD",
            WorkloadKind::Canneal => "canneal",
            WorkloadKind::Streamcluster => "streamcluster",
        }
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_matches_labels() {
        for kind in WorkloadKind::ALL {
            let w = kind.build(1 << 20, 0);
            assert_eq!(w.name(), kind.label());
            assert_eq!(w.footprint(), 1 << 20);
        }
    }

    #[test]
    fn categories_partition_all() {
        assert_eq!(
            WorkloadKind::BIG_MEMORY.len() + WorkloadKind::COMPUTE.len(),
            WorkloadKind::ALL.len()
        );
        for k in WorkloadKind::BIG_MEMORY {
            assert!(k.is_big_memory());
        }
        for k in WorkloadKind::COMPUTE {
            assert!(!k.is_big_memory());
        }
    }
}
