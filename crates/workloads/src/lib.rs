//! Synthetic workload generators mirroring the paper's benchmarks
//! (Table V).
//!
//! The paper drives its evaluation with big-memory workloads (graph500,
//! memcached, NPB:CG, the GUPS micro-benchmark) and compute workloads
//! (SPEC 2006: cactusADM, GemsFDTD, mcf, omnetpp; PARSEC: canneal,
//! streamcluster). What the evaluation actually consumes from each
//! workload is its *memory-access structure*: footprint, locality (which
//! sets TLB miss rates), page-mapping churn (which sets shadow-paging
//! cost), and content duplication (which sets page-sharing savings). Each
//! generator here reproduces those features with a seeded, deterministic
//! reference stream.
//!
//! # Example
//!
//! ```
//! use mv_workloads::{Workload, WorkloadKind};
//!
//! let mut w = WorkloadKind::Gups.build(64 << 20, 42);
//! let r = w.next_access();
//! assert!(r.offset < w.footprint());
//! assert_eq!(w.name(), "gups");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub(crate) mod bigmem;
mod compute;
mod kind;
mod pattern;

pub use kind::WorkloadKind;
pub use pattern::Access;

/// A deterministic memory-reference generator with the paper-relevant
/// workload metadata.
pub trait Workload: std::fmt::Debug + Send {
    /// Short name matching the paper's figures (e.g. `"graph500"`).
    fn name(&self) -> &'static str;

    /// Bytes of the workload's data arena. Generated offsets are `<` this.
    fn footprint(&self) -> u64;

    /// Produces the next memory reference (offset within the arena).
    fn next_access(&mut self) -> Access;

    /// Ideal (translation-free) cycles per memory access — converts
    /// translation cycles into the paper's execution-time overhead metric.
    fn cycles_per_access(&self) -> f64;

    /// Page-mapping churn: map/unmap events per million accesses. High
    /// churn is what makes shadow paging expensive (Section IX.D).
    fn churn_per_million(&self) -> u64;

    /// Fraction of pages whose contents duplicate some other page (OS
    /// text, zero pages, common structures) — drives the Section IX.E
    /// page-sharing study. Big-memory datasets are almost entirely unique.
    fn duplicate_fraction(&self) -> f64;

    /// Content fingerprint of the page at `page_index` (4 KiB granules of
    /// the arena) for dataset instance 0. See
    /// [`Workload::page_fingerprint_instanced`].
    fn page_fingerprint(&self, page_index: u64) -> u64 {
        self.page_fingerprint_instanced(page_index, 0)
    }

    /// Content fingerprint of the page at `page_index` for a specific
    /// dataset `instance` (e.g. the VM running the workload). Pages within
    /// the duplicate fraction draw fingerprints from a small pool shared by
    /// *all* instances and workloads (OS text, zero pages); the rest are
    /// unique to the workload *and* instance — two VMs running the same
    /// benchmark on their own datasets share only the common pool, which is
    /// what makes big-memory page sharing save so little (Section IX.E).
    fn page_fingerprint_instanced(&self, page_index: u64, instance: u64) -> u64 {
        let dup_pages = (self.duplicate_fraction() * (self.footprint() / 4096) as f64) as u64;
        if page_index < dup_pages {
            // Shared pool: identical across workloads, VMs, and instances.
            0xc0de_0000_0000_0000 | (page_index % 512)
        } else {
            // Unique: derived from name, instance, and index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in self.name().bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            h ^= instance.wrapping_mul(0xd6e8_feb8_6659_fd93);
            h ^ page_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        }
    }
}
