//! Compute workloads: SPEC 2006 (mcf, omnetpp, cactusADM, GemsFDTD) and
//! PARSEC (canneal, streamcluster) analogues.

use mv_types::rng::StdRng;
use mv_types::rng::Rng;

use crate::pattern::{skewed, uniform, Access, Cursor};
use crate::Workload;

/// mcf: network-simplex optimization — pointer chasing over arc/node
/// arrays with mild hot-set locality and a large, TLB-hostile footprint.
#[derive(Debug)]
pub struct Mcf {
    arena: u64,
    rng: StdRng,
}

impl Mcf {
    /// Creates an instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Mcf {
            arena,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for Mcf {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        // 70% of references chase within a hot 20% of the network.
        let off = skewed(&mut self.rng, self.arena, 0.2, 0.7);
        if self.rng.gen_bool(0.15) {
            Access::write(off)
        } else {
            Access::read(off)
        }
    }

    fn cycles_per_access(&self) -> f64 {
        317.0
    }

    fn churn_per_million(&self) -> u64 {
        10
    }

    fn duplicate_fraction(&self) -> f64 {
        0.05
    }
}

/// omnetpp: discrete-event network simulation — heap-allocated event
/// objects with decent locality but constant allocation/deallocation,
/// putting it in the shadow-paging-hostile category (Section IX.D).
#[derive(Debug)]
pub struct Omnetpp {
    arena: u64,
    rng: StdRng,
}

impl Omnetpp {
    /// Creates an instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Omnetpp {
            arena,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for Omnetpp {
    fn name(&self) -> &'static str {
        "omnetpp"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        let off = skewed(&mut self.rng, self.arena, 0.1, 0.8);
        if self.rng.gen_bool(0.3) {
            Access::write(off)
        } else {
            Access::read(off)
        }
    }

    fn cycles_per_access(&self) -> f64 {
        363.0
    }

    fn churn_per_million(&self) -> u64 {
        21_000 // event-object heap churn
    }

    fn duplicate_fraction(&self) -> f64 {
        0.08
    }
}

/// cactusADM: numerical relativity stencil — sweeps 3D grid planes with a
/// large stride, so consecutive references land on different pages even
/// though the pattern is regular. High TLB overhead despite THP, as the
/// paper observes.
#[derive(Debug)]
pub struct CactusAdm {
    arena: u64,
    cursor: Cursor,
    plane: u64,
    toggle: bool,
}

impl CactusAdm {
    /// Creates an instance over `arena` bytes.
    pub fn new(arena: u64, _seed: u64) -> Self {
        // Plane stride: a few pages, so plane-crossing sweeps touch a new
        // page almost every reference.
        let plane = 3 * 4096 + 256;
        CactusAdm {
            arena,
            cursor: Cursor::new(arena, plane),
            plane,
            toggle: false,
        }
    }
}

impl Workload for CactusAdm {
    fn name(&self) -> &'static str {
        "cactusADM"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        self.toggle = !self.toggle;
        let off = self.cursor.next();
        // Each stencil point also touches the neighboring plane.
        if self.toggle {
            Access::read((off + self.plane / 2) % self.arena)
        } else {
            Access::write(off)
        }
    }

    fn cycles_per_access(&self) -> f64 {
        210.0 // heavy floating-point work per access
    }

    fn churn_per_million(&self) -> u64 {
        2
    }

    fn duplicate_fraction(&self) -> f64 {
        0.03
    }
}

/// GemsFDTD: finite-difference time-domain electromagnetics — strided 3D
/// sweeps like cactusADM but with periodic field reallocations, giving it
/// both high TLB overhead and shadow-paging-hostile churn.
#[derive(Debug)]
pub struct GemsFdtd {
    arena: u64,
    cursor: Cursor,
    rng: StdRng,
}

impl GemsFdtd {
    /// Creates an instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        GemsFdtd {
            arena,
            cursor: Cursor::new(arena, 2 * 4096 + 512),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for GemsFdtd {
    fn name(&self) -> &'static str {
        "GemsFDTD"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        let off = self.cursor.next();
        if self.rng.gen_bool(0.4) {
            Access::write(off)
        } else {
            Access::read(off)
        }
    }

    fn cycles_per_access(&self) -> f64 {
        284.0
    }

    fn churn_per_million(&self) -> u64 {
        23_000 // periodic field reallocation
    }

    fn duplicate_fraction(&self) -> f64 {
        0.04
    }
}

/// canneal: simulated-annealing chip routing — random element swaps over a
/// huge netlist (cache- and TLB-hostile random reads) with moderate heap
/// churn.
#[derive(Debug)]
pub struct Canneal {
    arena: u64,
    rng: StdRng,
}

impl Canneal {
    /// Creates an instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Canneal {
            arena,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        let off = uniform(&mut self.rng, self.arena);
        if self.rng.gen_bool(0.1) {
            Access::write(off)
        } else {
            Access::read(off)
        }
    }

    fn cycles_per_access(&self) -> f64 {
        641.0
    }

    fn churn_per_million(&self) -> u64 {
        14_000 // netlist element churn
    }

    fn duplicate_fraction(&self) -> f64 {
        0.05
    }
}

/// streamcluster: online clustering — streams through the point buffer
/// sequentially while repeatedly touching the medoid set (hot).
#[derive(Debug)]
pub struct Streamcluster {
    arena: u64,
    cursor: Cursor,
    rng: StdRng,
}

impl Streamcluster {
    /// Creates an instance over `arena` bytes.
    pub fn new(arena: u64, seed: u64) -> Self {
        Streamcluster {
            arena,
            cursor: Cursor::new(arena, 64),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn footprint(&self) -> u64 {
        self.arena
    }

    fn next_access(&mut self) -> Access {
        if self.rng.gen_bool(0.25) {
            // Medoid/center comparisons: small hot set.
            Access::read(uniform(&mut self.rng, self.arena / 64))
        } else {
            Access::read(self.cursor.next())
        }
    }

    fn cycles_per_access(&self) -> f64 {
        96.0
    }

    fn churn_per_million(&self) -> u64 {
        40
    }

    fn duplicate_fraction(&self) -> f64 {
        0.06
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_stay_in_bounds() {
        let arena = 16 << 20;
        let mut all: Vec<Box<dyn Workload>> = vec![
            Box::new(Mcf::new(arena, 1)),
            Box::new(Omnetpp::new(arena, 1)),
            Box::new(CactusAdm::new(arena, 1)),
            Box::new(GemsFdtd::new(arena, 1)),
            Box::new(Canneal::new(arena, 1)),
            Box::new(Streamcluster::new(arena, 1)),
        ];
        for w in &mut all {
            for _ in 0..5_000 {
                assert!(w.next_access().offset < arena, "{}", w.name());
            }
        }
    }

    #[test]
    fn stencils_cross_pages_constantly() {
        let mut c = CactusAdm::new(64 << 20, 0);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..1000 {
            pages.insert(c.next_access().offset >> 12);
        }
        assert!(pages.len() > 400, "stride sweeps touch many pages: {}", pages.len());
    }

    #[test]
    fn streamcluster_is_mostly_sequential() {
        let mut s = Streamcluster::new(64 << 20, 1);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..1000 {
            pages.insert(s.next_access().offset >> 12);
        }
        assert!(pages.len() < 300, "streaming reuses pages: {}", pages.len());
    }

    #[test]
    fn churn_categories_match_section_9d() {
        // Shadow-paging-hostile workloads have visibly higher churn.
        let hostile = [
            Memcached_churn(),
            GemsFdtd::new(1 << 20, 0).churn_per_million(),
            Omnetpp::new(1 << 20, 0).churn_per_million(),
            Canneal::new(1 << 20, 0).churn_per_million(),
        ];
        let friendly = [
            Mcf::new(1 << 20, 0).churn_per_million(),
            CactusAdm::new(1 << 20, 0).churn_per_million(),
            Streamcluster::new(1 << 20, 0).churn_per_million(),
        ];
        assert!(hostile.iter().min().unwrap() > friendly.iter().max().unwrap());
    }

    #[allow(non_snake_case)]
    fn Memcached_churn() -> u64 {
        crate::bigmem::Memcached::new(1 << 20, 0).churn_per_million()
    }
}
