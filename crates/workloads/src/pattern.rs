//! Shared access-pattern building blocks.

use mv_types::rng::StdRng;
use mv_types::rng::Rng;

/// One memory reference: byte offset within the workload's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte offset within the arena.
    pub offset: u64,
    /// Whether the reference writes.
    pub write: bool,
}

impl Access {
    /// A read at `offset`.
    pub fn read(offset: u64) -> Access {
        Access {
            offset,
            write: false,
        }
    }

    /// A write at `offset`.
    pub fn write(offset: u64) -> Access {
        Access {
            offset,
            write: true,
        }
    }
}

/// Uniform random 8-byte-aligned offset within `[0, arena)`.
pub(crate) fn uniform(rng: &mut StdRng, arena: u64) -> u64 {
    rng.gen_range(0..arena / 8) * 8
}

/// Hot/cold skewed offset: with probability `hot_prob` the reference lands
/// in the first `hot_fraction` of the arena; otherwise anywhere. Models
/// the mild locality of pointer-heavy workloads (mcf, omnetpp).
pub(crate) fn skewed(rng: &mut StdRng, arena: u64, hot_fraction: f64, hot_prob: f64) -> u64 {
    let hot_bytes = ((arena as f64 * hot_fraction) as u64).max(8);
    if rng.gen_bool(hot_prob) {
        rng.gen_range(0..hot_bytes / 8) * 8
    } else {
        uniform(rng, arena)
    }
}

/// A sequential cursor that walks the arena in `stride`-byte steps and
/// wraps, used for scan phases (matrix values, streaming buffers).
#[derive(Debug, Clone)]
pub(crate) struct Cursor {
    pos: u64,
    stride: u64,
    arena: u64,
}

impl Cursor {
    pub(crate) fn new(arena: u64, stride: u64) -> Cursor {
        Cursor {
            pos: 0,
            stride,
            arena,
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let out = self.pos;
        self.pos = (self.pos + self.stride) % self.arena;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_arena() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let o = uniform(&mut rng, 1 << 20);
            assert!(o < 1 << 20);
            assert_eq!(o % 8, 0);
        }
    }

    #[test]
    fn skewed_prefers_the_hot_set() {
        let mut rng = StdRng::seed_from_u64(2);
        let arena = 1u64 << 24;
        let hot = (0..10_000)
            .filter(|_| skewed(&mut rng, arena, 0.1, 0.9) < arena / 10)
            .count();
        assert!(hot > 8_500, "roughly 90% of references hit the hot tenth");
    }

    #[test]
    fn cursor_wraps() {
        let mut c = Cursor::new(100, 30);
        assert_eq!(c.next(), 0);
        assert_eq!(c.next(), 30);
        assert_eq!(c.next(), 60);
        assert_eq!(c.next(), 90);
        assert_eq!(c.next(), 20);
    }

    #[test]
    fn access_constructors() {
        assert!(!Access::read(8).write);
        assert!(Access::write(8).write);
    }
}
