//! Error type for physical-memory operations.

use core::fmt;

/// Errors returned by the physical-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PhysError {
    /// The allocator has no free run of the requested size.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Total free bytes remaining (possibly fragmented).
        free: u64,
    },
    /// No contiguous region of the requested size exists, though enough
    /// total memory is free (i.e., memory is fragmented).
    Fragmented {
        /// Bytes requested contiguously.
        requested: u64,
        /// Largest contiguous free run available, in bytes.
        largest_free_run: u64,
    },
    /// The given address or range is outside this physical address space.
    OutOfBounds {
        /// Raw address that was out of bounds.
        addr: u64,
        /// Size of the address space in bytes.
        size: u64,
    },
    /// The frame is already free (double free) or already allocated.
    BadState {
        /// Raw frame base address.
        addr: u64,
        /// What went wrong.
        what: &'static str,
    },
}

impl fmt::Display for PhysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysError::OutOfMemory { requested, free } => write!(
                f,
                "out of memory: requested {requested:#x} bytes, {free:#x} free"
            ),
            PhysError::Fragmented {
                requested,
                largest_free_run,
            } => write!(
                f,
                "no contiguous run of {requested:#x} bytes (largest free run {largest_free_run:#x})"
            ),
            PhysError::OutOfBounds { addr, size } => write!(
                f,
                "address {addr:#x} outside physical space of {size:#x} bytes"
            ),
            PhysError::BadState { addr, what } => {
                write!(f, "frame {addr:#x} in bad state: {what}")
            }
        }
    }
}

impl std::error::Error for PhysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PhysError::OutOfMemory {
            requested: 0x1000,
            free: 0,
        };
        assert!(e.to_string().contains("out of memory"));
        let e = PhysError::Fragmented {
            requested: 0x40000000,
            largest_free_run: 0x200000,
        };
        assert!(e.to_string().contains("contiguous"));
    }
}
