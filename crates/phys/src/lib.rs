//! Physical-memory substrate for the memory-virtualization simulator.
//!
//! Both the **host physical** (hPA) and **guest physical** (gPA) address
//! spaces are instances of [`PhysMem`], parameterized by the address type.
//! The substrate provides everything the paper's software stack needs from
//! a physical memory manager:
//!
//! * A binary **buddy allocator** over 4 KiB frames ([`buddy::BuddyAllocator`])
//!   with allocation at 4 KiB / 2 MiB / 1 GiB orders, used by the guest OS
//!   and the VMM for page placement.
//! * **Contiguous reservations** for direct-segment backing (Section VI.A of
//!   the paper reserves memory at startup for long-lived VMs).
//! * **Fragmentation injection** so experiments can start from a fragmented
//!   machine state (Section IV / Table III).
//! * A **bad-frame list** modeling permanent hard faults (Section V: a single
//!   faulty page can otherwise prevent a large direct segment).
//! * A **memory-compaction** model ([`compact`]) which relocates movable
//!   allocated frames to manufacture contiguity, with page-move cost
//!   accounting (Section IV, "Memory compaction").
//! * A **frame store** holding real 512-entry page-table page contents, so
//!   page walks in `mv-pt` / `mv-core` read actual memory.
//!
//! # Example
//!
//! ```
//! use mv_phys::PhysMem;
//! use mv_types::{Hpa, PageSize, GIB};
//!
//! let mut mem: PhysMem<Hpa> = PhysMem::new(4 * GIB);
//! let seg = mem.reserve_contiguous(GIB, PageSize::Size1G).expect("fresh memory");
//! assert_eq!(seg.len(), GIB);
//! let frame = mem.alloc(PageSize::Size4K).expect("plenty left");
//! assert!(!seg.contains(frame));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Fault-reachable library code must degrade via typed errors, never abort
// (tests may still unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod badframes;
pub mod buddy;
pub mod compact;
mod error;
mod mem;
pub mod store;

pub use badframes::BadFrames;
pub use buddy::BuddyAllocator;
pub use compact::{CompactionOutcome, CompactionStats};
pub use error::PhysError;
pub use mem::{PhysMem, PhysMemStats};
pub use store::FrameStore;

/// Number of 64-bit entries in one 4 KiB frame.
pub const ENTRIES_PER_FRAME: usize = 512;
