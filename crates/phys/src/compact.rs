//! Memory-compaction model.
//!
//! Section IV of the paper leverages the OS memory-compaction daemon to
//! manufacture contiguous host-physical memory for a VMM segment: compaction
//! "slowly relocates pages", after which a Guest Direct (or Base Virtualized)
//! VM can be upgraded to Dual Direct (or VMM Direct) — the Table III
//! transitions. This module implements the relocation: pick the cheapest
//! window of the requested size, move every movable allocated frame out of
//! it, and reserve the resulting contiguous run. The number of pages moved
//! is the cost metric the experiments report.

use mv_types::{AddrRange, Address, PageSize, PAGE_SHIFT_4K, PAGE_SIZE_4K};

use crate::mem::PhysMem;
use crate::PhysError;

/// Result of a successful [`PhysMem::compact_and_reserve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionOutcome<A: Address> {
    /// The contiguous range produced and reserved.
    pub range: AddrRange<A>,
    /// Number of 4 KiB pages relocated to clear the window.
    pub pages_moved: u64,
    /// Bad frames inside the range (empty unless `allow_bad` was set).
    pub bad_inside: Vec<A>,
}

/// Cumulative compaction statistics for a physical space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Total 4 KiB pages moved over the lifetime of the space.
    pub pages_moved: u64,
    /// Number of compaction runs performed.
    pub runs: u64,
}

pub(crate) fn compact_and_reserve<A: Address>(
    mem: &mut PhysMem<A>,
    len: u64,
    align: PageSize,
    allow_bad: bool,
    on_move: &mut dyn FnMut(A, A),
) -> Result<CompactionOutcome<A>, PhysError> {
    let nframes = len.div_ceil(PAGE_SIZE_4K);
    let align_frames = align.covered_4k_pages();
    let total_frames = mem.size_bytes() >> PAGE_SHIFT_4K;

    // Fast path: contiguity already exists.
    if let Some(start) = mem.buddy().find_free_run(nframes, align_frames) {
        mem.buddy_mut().carve(start, nframes)?;
        mem.stats_mut().runs += 1;
        return Ok(CompactionOutcome {
            range: frame_range(start, nframes),
            pages_moved: 0,
            bad_inside: Vec::new(),
        });
    }

    let window = choose_window(mem, nframes, align_frames, total_frames, allow_bad).ok_or(
        PhysError::Fragmented {
            requested: len,
            largest_free_run: mem.buddy().largest_free_run() * PAGE_SIZE_4K,
        },
    )?;

    let range = frame_range(window, nframes);
    let bad_inside: Vec<A> = mem.bad_frames().bad_in_range(&range);

    // Pre-carve the free portions of the window (marked pinned) so
    // relocation destinations are always allocated outside it and the
    // relocation loop below skips them.
    let free_in_window: Vec<(u64, u64)> = mem
        .buddy()
        .free_runs()
        .into_iter()
        .filter_map(|(s, l)| {
            let lo = s.max(window);
            let hi = (s + l).min(window + nframes);
            (lo < hi).then(|| (lo, hi - lo))
        })
        .collect();
    for &(s, l) in &free_in_window {
        mem.buddy_mut().carve(s, l)?;
        for f in s..s + l {
            mem.buddy_mut().set_pinned(f, true)?;
        }
    }

    // Relocate every movable allocated block overlapping the window.
    // Collect first: we mutate the allocator while iterating otherwise.
    let to_move: Vec<(u64, u8)> = mem
        .buddy()
        .allocated_iter()
        .filter(|&(s, o, _)| {
            let bstart = s;
            let bend = s + (1u64 << o);
            bend > window && bstart < window + nframes
        })
        .filter(|&(s, _, pinned)| {
            !pinned && !mem.bad_frames().is_bad(A::from_u64(s << PAGE_SHIFT_4K))
        })
        .map(|(s, o, _)| (s, o))
        .collect();

    let mut pages_moved = 0u64;
    let moved_blocks = to_move.clone();
    for (bstart, border) in to_move {
        let bframes = 1u64 << border;
        // Allocate a destination for each 4 KiB frame individually; the
        // copies need not stay contiguous.
        for i in 0..bframes {
            let src = bstart + i;
            let dst = mem.buddy_mut().alloc(0).map_err(|_| PhysError::Fragmented {
                requested: len,
                largest_free_run: mem.buddy().largest_free_run() * PAGE_SIZE_4K,
            })?;
            debug_assert!(
                !(dst >= window && dst < window + nframes),
                "relocation destination landed inside the window"
            );
            mem.store_mut().relocate_frame(src, dst);
            on_move(
                A::from_u64(src << PAGE_SHIFT_4K),
                A::from_u64(dst << PAGE_SHIFT_4K),
            );
            pages_moved += 1;
        }
    }
    // Free the moved-out source blocks only now: freeing them mid-loop
    // would let a later destination allocation land back inside the window.
    for &(bstart, border) in &moved_blocks {
        mem.buddy_mut().free(bstart, border)?;
    }

    // Return the pre-carves, then atomically carve the whole window (minus
    // bad frames, which stay carved as part of the bad-frame bookkeeping).
    for &(s, l) in &free_in_window {
        mem.buddy_mut().free_range(s, l)?;
    }
    let mut cursor = window;
    let end = window + nframes;
    for b in &bad_inside {
        let bframe = b.as_u64() >> PAGE_SHIFT_4K;
        if bframe > cursor {
            mem.buddy_mut().carve(cursor, bframe - cursor)?;
        }
        cursor = bframe + 1;
    }
    if end > cursor {
        mem.buddy_mut().carve(cursor, end - cursor)?;
    }

    mem.stats_mut().pages_moved += pages_moved;
    mem.stats_mut().runs += 1;
    Ok(CompactionOutcome {
        range,
        pages_moved,
        bad_inside,
    })
}

fn frame_range<A: Address>(start_frame: u64, nframes: u64) -> AddrRange<A> {
    AddrRange::from_start_len(
        A::from_u64(start_frame << PAGE_SHIFT_4K),
        nframes << PAGE_SHIFT_4K,
    )
}

/// Chooses the window `[w, w+nframes)` (aligned to `align_frames`)
/// minimizing the number of frames that must be relocated, subject to:
/// no pinned blocks inside, no bad frames inside (unless `allow_bad`), and
/// enough free space outside the window to absorb its movable contents.
fn choose_window<A: Address>(
    mem: &PhysMem<A>,
    nframes: u64,
    align_frames: u64,
    total_frames: u64,
    allow_bad: bool,
) -> Option<u64> {
    if nframes > total_frames {
        return None;
    }
    let mut best: Option<(u64, u64)> = None; // (cost, window_start)
    let step = align_frames.max(nframes / 64).next_power_of_two();
    let mut w = 0;
    while w + nframes <= total_frames {
        if let Some(cost) = window_cost(mem, w, nframes, allow_bad) {
            let free_outside = mem.buddy().free_frames() - free_in(mem, w, nframes);
            if cost <= free_outside && best.map_or(true, |(c, _)| cost < c) {
                best = Some((cost, w));
                if cost == 0 {
                    break;
                }
            }
        }
        w += step;
    }
    best.map(|(_, w)| w)
}

/// Frames that would need moving for window `[w, w+n)`; `None` if the
/// window is invalid (pinned or disallowed bad frames present).
fn window_cost<A: Address>(mem: &PhysMem<A>, w: u64, n: u64, allow_bad: bool) -> Option<u64> {
    let range = frame_range::<A>(w, n);
    if !allow_bad && mem.bad_frames().any_in_range(&range) {
        return None;
    }
    let mut cost = 0u64;
    for (bstart, border, pinned) in mem.buddy().allocated_iter() {
        let bend = bstart + (1u64 << border);
        if bend <= w || bstart >= w + n {
            continue;
        }
        let is_bad_carve = mem.bad_frames().is_bad(A::from_u64(bstart << PAGE_SHIFT_4K));
        if is_bad_carve {
            if allow_bad {
                continue;
            }
            return None;
        }
        if pinned {
            return None;
        }
        // Whole blocks move, including any part outside the window.
        cost += 1u64 << border;
    }
    Some(cost)
}

fn free_in<A: Address>(mem: &PhysMem<A>, w: u64, n: u64) -> u64 {
    mem.buddy()
        .free_runs()
        .into_iter()
        .map(|(s, l)| {
            let lo = s.max(w);
            let hi = (s + l).min(w + n);
            hi.saturating_sub(lo)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::{Hpa, MIB};
    use mv_types::rng::StdRng;

    #[test]
    fn already_contiguous_memory_needs_no_moves() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let out = mem
            .compact_and_reserve(16 * MIB, PageSize::Size2M, false, &mut |_, _| {})
            .unwrap();
        assert_eq!(out.pages_moved, 0);
        assert_eq!(out.range.len(), 16 * MIB);
    }

    #[test]
    fn compaction_clears_a_fragmented_window() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut rng = StdRng::seed_from_u64(3);
        let held = mem.fragment(&mut rng, 0.3);
        assert!(mem.reserve_contiguous(32 * MIB, PageSize::Size4K).is_err());

        let mut moves = Vec::new();
        let out = mem
            .compact_and_reserve(32 * MIB, PageSize::Size4K, false, &mut |a, b| {
                moves.push((a, b))
            })
            .unwrap();
        assert_eq!(out.range.len(), 32 * MIB);
        assert_eq!(out.pages_moved as usize, moves.len());
        assert!(out.pages_moved > 0, "fragmented memory requires moves");
        // Every move destination lies outside the produced range.
        for &(src, dst) in &moves {
            assert!(out.range.contains(src));
            assert!(!out.range.contains(dst));
        }
        // Frame accounting is intact: held + moved pages all still allocated.
        assert_eq!(
            mem.free_bytes(),
            64 * MIB - 32 * MIB - (held.len() as u64 - out.pages_moved) * 4096
                - out.pages_moved * 4096
        );
    }

    #[test]
    fn compaction_moves_frame_contents() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(16 * MIB);
        // Occupy a frame in the middle with known contents.
        let r = AddrRange::new(Hpa::new(8 * MIB), Hpa::new(8 * MIB + 4096));
        mem.carve_range(&r).unwrap();
        mem.write_u64(Hpa::new(8 * MIB), 0xfeed);

        let mut moved_to = None;
        let out = mem
            .compact_and_reserve(16 * MIB - 4096 * 4, PageSize::Size4K, false, &mut |src, dst| {
                assert_eq!(src, Hpa::new(8 * MIB));
                moved_to = Some(dst);
            })
            .unwrap();
        assert_eq!(out.pages_moved, 1);
        let dst = moved_to.expect("one move must occur");
        assert_eq!(mem.read_u64(dst), 0xfeed);
        assert_eq!(mem.read_u64(Hpa::new(8 * MIB)), 0, "source cleared");
    }

    #[test]
    fn pinned_frames_block_windows() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(8 * MIB);
        // Pin one frame in the middle of the only possible window.
        let p = Hpa::new(4 * MIB);
        mem.carve_range(&AddrRange::from_start_len(p, 4096)).unwrap();
        mem.set_pinned(p, true).unwrap();
        let err = mem
            .compact_and_reserve(8 * MIB, PageSize::Size4K, false, &mut |_, _| {})
            .unwrap_err();
        assert!(matches!(err, PhysError::Fragmented { .. }));
    }

    #[test]
    fn allow_bad_reports_holes() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(8 * MIB);
        mem.mark_bad(Hpa::new(4 * MIB)).unwrap();
        // Full-space reservation impossible without tolerance...
        assert!(mem
            .compact_and_reserve(8 * MIB, PageSize::Size4K, false, &mut |_, _| {})
            .is_err());
        // ...but allowed with the escape-filter path.
        let out = mem
            .compact_and_reserve(8 * MIB, PageSize::Size4K, true, &mut |_, _| {})
            .unwrap();
        assert_eq!(out.bad_inside, vec![Hpa::new(4 * MIB)]);
        assert_eq!(out.range.len(), 8 * MIB);
    }

    #[test]
    fn compaction_stats_accumulate() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(32 * MIB);
        let mut rng = StdRng::seed_from_u64(11);
        let _held = mem.fragment(&mut rng, 0.2);
        let out = mem
            .compact_and_reserve(16 * MIB, PageSize::Size4K, false, &mut |_, _| {})
            .unwrap();
        let s = mem.stats();
        assert_eq!(s.pages_moved_by_compaction, out.pages_moved);
    }
}
