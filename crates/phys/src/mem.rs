//! The physical address space façade.

use mv_types::{AddrRange, Address, PageSize, PAGE_SHIFT_4K, PAGE_SIZE_4K};
use mv_types::rng::Rng;

use crate::badframes::BadFrames;
use crate::buddy::BuddyAllocator;
use crate::compact::{self, CompactionOutcome, CompactionStats};
use crate::error::PhysError;
use crate::store::FrameStore;

/// A physical address space: buddy allocator + frame contents + bad-frame
/// list.
///
/// Instantiated as `PhysMem<Hpa>` for the host machine and `PhysMem<Gpa>`
/// for each virtual machine's guest-physical space.
///
/// # Example
///
/// ```
/// use mv_phys::PhysMem;
/// use mv_types::{Gpa, PageSize, MIB};
///
/// let mut mem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
/// let page = mem.alloc(PageSize::Size2M)?;
/// assert!(page.is_aligned(PageSize::Size2M));
/// mem.free(page, PageSize::Size2M)?;
/// # Ok::<(), mv_phys::PhysError>(())
/// ```
pub struct PhysMem<A> {
    size: u64,
    buddy: BuddyAllocator,
    store: FrameStore<A>,
    bad: BadFrames<A>,
    stats: CompactionStats,
}

/// Point-in-time statistics about a physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysMemStats {
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Free bytes (possibly fragmented).
    pub free_bytes: u64,
    /// Largest contiguous free run in bytes.
    pub largest_free_run_bytes: u64,
    /// Number of permanently faulty frames.
    pub bad_frames: usize,
    /// Cumulative 4 KiB pages moved by compaction.
    pub pages_moved_by_compaction: u64,
}

impl<A: Address> PhysMem<A> {
    /// Creates a physical space of `size_bytes` (rounded down to whole 4 KiB
    /// frames), fully free, with no bad frames.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is smaller than one frame.
    pub fn new(size_bytes: u64) -> Self {
        let nframes = size_bytes >> PAGE_SHIFT_4K;
        assert!(nframes > 0, "physical space must hold at least one frame");
        Self {
            size: nframes << PAGE_SHIFT_4K,
            buddy: BuddyAllocator::new(nframes),
            store: FrameStore::new(),
            bad: BadFrames::new(),
            stats: CompactionStats::default(),
        }
    }

    /// Total size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.size
    }

    /// Free bytes (possibly fragmented).
    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.buddy.free_frames() * PAGE_SIZE_4K
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PhysMemStats {
        PhysMemStats {
            size_bytes: self.size,
            free_bytes: self.free_bytes(),
            largest_free_run_bytes: self.buddy.largest_free_run() * PAGE_SIZE_4K,
            bad_frames: self.bad.count(),
            pages_moved_by_compaction: self.stats.pages_moved,
        }
    }

    /// Marks the frame containing `addr` as permanently faulty. The frame is
    /// removed from the free pool so it is never allocated.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] if the frame is currently allocated,
    /// or [`PhysError::OutOfBounds`] if outside the space.
    pub fn mark_bad(&mut self, addr: A) -> Result<(), PhysError> {
        self.check_bounds(addr)?;
        let frame = addr.as_u64() >> PAGE_SHIFT_4K;
        self.buddy.carve(frame, 1)?;
        self.bad.mark(addr);
        Ok(())
    }

    /// Marks `n` random currently-free frames within `range` as faulty.
    /// Used to set up the Figure 13 escape-filter experiment.
    pub fn inject_bad_frames<R: Rng>(
        &mut self,
        rng: &mut R,
        range: &AddrRange<A>,
        n: usize,
    ) -> Result<Vec<A>, PhysError> {
        let mut injected = Vec::with_capacity(n);
        let mut attempts = 0;
        while injected.len() < n {
            attempts += 1;
            if attempts > n * 1000 {
                return Err(PhysError::BadState {
                    addr: range.start().as_u64(),
                    what: "could not find enough free frames to mark bad",
                });
            }
            let nframes = range.len() >> PAGE_SHIFT_4K;
            let frame_off = rng.gen_range(0..nframes);
            let addr = A::from_u64(range.start().as_u64() + (frame_off << PAGE_SHIFT_4K));
            if self.bad.is_bad(addr) {
                continue;
            }
            if self.mark_bad(addr).is_ok() {
                injected.push(addr);
            }
        }
        Ok(injected)
    }

    /// Read access to the bad-frame list.
    pub fn bad_frames(&self) -> &BadFrames<A> {
        &self.bad
    }

    /// Allocates one page of the given size, returning its base address.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::OutOfMemory`] if no suitably sized block is
    /// free.
    pub fn alloc(&mut self, size: PageSize) -> Result<A, PhysError> {
        let order = Self::order_of(size);
        let frame = self.buddy.alloc(order)?;
        Ok(A::from_u64(frame << PAGE_SHIFT_4K))
    }

    /// Frees a page previously returned by [`Self::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] on double free or size mismatch.
    pub fn free(&mut self, addr: A, size: PageSize) -> Result<(), PhysError> {
        self.check_bounds(addr)?;
        let frame = addr.as_u64() >> PAGE_SHIFT_4K;
        self.buddy.free(frame, Self::order_of(size))?;
        for f in 0..size.covered_4k_pages() {
            self.store.clear_frame(frame + f);
        }
        Ok(())
    }

    /// Removes the specific range from the free pool (boot-time
    /// reservations, I/O gap carving).
    ///
    /// # Errors
    ///
    /// Fails if any frame in the range is not free or the range is
    /// unaligned/out of bounds.
    pub fn carve_range(&mut self, range: &AddrRange<A>) -> Result<(), PhysError> {
        self.check_range(range)?;
        self.buddy.carve(
            range.start().as_u64() >> PAGE_SHIFT_4K,
            range.len() >> PAGE_SHIFT_4K,
        )
    }

    /// Returns a carved range to the free pool.
    ///
    /// # Errors
    ///
    /// Fails if the range was not carved/allocated exactly.
    pub fn release_range(&mut self, range: &AddrRange<A>) -> Result<(), PhysError> {
        self.check_range(range)?;
        self.buddy.free_range(
            range.start().as_u64() >> PAGE_SHIFT_4K,
            range.len() >> PAGE_SHIFT_4K,
        )
    }

    /// Reserves the lowest available contiguous run of `len` bytes whose
    /// start is aligned to `align`. Bad frames never appear inside the
    /// returned range (they are excluded from the free pool).
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::Fragmented`] if no such run exists.
    pub fn reserve_contiguous(
        &mut self,
        len: u64,
        align: PageSize,
    ) -> Result<AddrRange<A>, PhysError> {
        let nframes = len.div_ceil(PAGE_SIZE_4K);
        let align_frames = align.covered_4k_pages();
        let start = self
            .buddy
            .find_free_run(nframes, align_frames)
            .ok_or_else(|| PhysError::Fragmented {
                requested: len,
                largest_free_run: self.buddy.largest_free_run() * PAGE_SIZE_4K,
            })?;
        self.buddy.carve(start, nframes)?;
        Ok(AddrRange::from_start_len(
            A::from_u64(start << PAGE_SHIFT_4K),
            nframes << PAGE_SHIFT_4K,
        ))
    }

    /// Like [`Self::reserve_contiguous`], but tolerates bad frames inside
    /// the run: the returned range may contain faulty frames, which are
    /// reported so the caller can escape them (Section V). Only the good
    /// frames are carved.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::Fragmented`] if no run exists even allowing bad
    /// frames.
    pub fn reserve_contiguous_allowing_bad(
        &mut self,
        len: u64,
        align: PageSize,
    ) -> Result<(AddrRange<A>, Vec<A>), PhysError> {
        let nframes = len.div_ceil(PAGE_SIZE_4K);
        let align_frames = align.covered_4k_pages();
        // Merge free runs across bad frames: a candidate window is valid if
        // every frame in it is either free or bad.
        let start = self
            .find_run_allowing_bad(nframes, align_frames)
            .ok_or_else(|| PhysError::Fragmented {
                requested: len,
                largest_free_run: self.buddy.largest_free_run() * PAGE_SIZE_4K,
            })?;
        let range = AddrRange::from_start_len(
            A::from_u64(start << PAGE_SHIFT_4K),
            nframes << PAGE_SHIFT_4K,
        );
        let bad = self.bad.bad_in_range(&range);
        // Carve the good sub-ranges between bad frames.
        let mut cursor = start;
        let end = start + nframes;
        for b in &bad {
            let bframe = b.as_u64() >> PAGE_SHIFT_4K;
            if bframe > cursor {
                self.buddy.carve(cursor, bframe - cursor)?;
            }
            cursor = bframe + 1;
        }
        if end > cursor {
            self.buddy.carve(cursor, end - cursor)?;
        }
        Ok((range, bad))
    }

    fn find_run_allowing_bad(&self, nframes: u64, align_frames: u64) -> Option<u64> {
        // Build merged runs of (free ∪ bad) frames.
        let mut events: Vec<(u64, u64)> = self.buddy.free_runs();
        events.extend(
            self.bad
                .iter()
                .map(|a| (a.as_u64() >> PAGE_SHIFT_4K, 1u64)),
        );
        events.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (s, l) in events {
            match merged.last_mut() {
                Some((ms, ml)) if *ms + *ml >= s => *ml = (*ml).max(s + l - *ms),
                _ => merged.push((s, l)),
            }
        }
        for (s, l) in merged {
            let aligned = (s + align_frames - 1) & !(align_frames - 1);
            if aligned + nframes <= s + l {
                return Some(aligned);
            }
        }
        None
    }

    /// Pins (or unpins) the allocated block containing `addr`, preventing
    /// compaction from moving it. Balloon drivers pin the pages they
    /// reclaim (Section IV).
    ///
    /// # Errors
    ///
    /// Fails if `addr` is not in an allocated block.
    pub fn set_pinned(&mut self, addr: A, pinned: bool) -> Result<(), PhysError> {
        self.check_bounds(addr)?;
        self.buddy
            .set_pinned(addr.as_u64() >> PAGE_SHIFT_4K, pinned)
    }

    /// Fragments free memory by carving each currently-free 4 KiB frame with
    /// probability `occupancy`, simulating long-running mixed allocation.
    /// Returns the carved frame base addresses (the simulated "other
    /// tenants'" pages) so tests can release them later.
    pub fn fragment<R: Rng>(&mut self, rng: &mut R, occupancy: f64) -> Vec<A> {
        let occupancy = occupancy.clamp(0.0, 1.0);
        let free: Vec<(u64, u64)> = self.buddy.free_runs();
        let mut carved = Vec::new();
        for (start, len) in free {
            for f in start..start + len {
                // A frame listed free is carvable; if allocator state drifts
                // mid-storm, skip the frame rather than aborting the run.
                if rng.gen_bool(occupancy) && self.buddy.carve(f, 1).is_ok() {
                    carved.push(A::from_u64(f << PAGE_SHIFT_4K));
                }
            }
        }
        carved
    }

    /// Compacts memory to produce (and reserve) a contiguous run of `len`
    /// bytes aligned to `align`, relocating movable allocated frames out of
    /// the chosen window. Each relocation invokes `on_move(old, new)` with
    /// 4 KiB frame base addresses so the owner can update its page tables.
    ///
    /// If `allow_bad` is true, bad frames inside the window are tolerated
    /// and reported in the outcome instead of disqualifying the window.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::Fragmented`] if no window can be cleared (all
    /// windows contain pinned blocks, or there is not enough free space
    /// outside any window to absorb its contents).
    pub fn compact_and_reserve(
        &mut self,
        len: u64,
        align: PageSize,
        allow_bad: bool,
        on_move: &mut dyn FnMut(A, A),
    ) -> Result<CompactionOutcome<A>, PhysError> {
        compact::compact_and_reserve(self, len, align, allow_bad, on_move)
    }

    /// Reads the naturally-aligned 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is outside the space or unaligned.
    #[inline]
    pub fn read_u64(&self, addr: A) -> u64 {
        debug_assert!(addr.as_u64() < self.size, "read outside physical space");
        self.store.read_u64(addr)
    }

    /// Writes the naturally-aligned 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is outside the space or unaligned.
    #[inline]
    pub fn write_u64(&mut self, addr: A, value: u64) {
        debug_assert!(addr.as_u64() < self.size, "write outside physical space");
        self.store.write_u64(addr, value);
    }

    /// Pins (or unpins) every allocated block overlapping `range`. Used to
    /// protect direct-segment backing from compaction.
    ///
    /// # Errors
    ///
    /// Propagates accounting errors.
    pub fn set_pinned_range(&mut self, range: &AddrRange<A>, pinned: bool) -> Result<(), PhysError> {
        let start = range.start().as_u64() >> PAGE_SHIFT_4K;
        let end = range.end().as_u64() >> PAGE_SHIFT_4K;
        let blocks: Vec<u64> = self
            .buddy
            .allocated_iter()
            .filter(|&(s, o, _)| s < end && s + (1u64 << o) > start)
            .map(|(s, _, _)| s)
            .collect();
        for b in blocks {
            self.buddy.set_pinned(b, pinned)?;
        }
        Ok(())
    }

    /// Lists allocated blocks as `(start_frame_index, order, pinned)`.
    /// Used by owners (e.g. the VMM) to pin unmovable allocations before
    /// compaction.
    pub fn allocated_blocks(&self) -> Vec<(u64, u8, bool)> {
        self.buddy.allocated_iter().collect()
    }

    /// Moves the 4 KiB of contents at frame `from` to frame `to`
    /// (addresses must be frame-aligned). The owner is responsible for
    /// updating any mappings.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either address is unaligned.
    pub fn relocate_contents(&mut self, from: A, to: A) {
        debug_assert!(from.is_aligned(PageSize::Size4K));
        debug_assert!(to.is_aligned(PageSize::Size4K));
        self.store
            .relocate_frame(from.as_u64() >> PAGE_SHIFT_4K, to.as_u64() >> PAGE_SHIFT_4K);
    }

    fn order_of(size: PageSize) -> u8 {
        (size.shift() - PAGE_SHIFT_4K) as u8
    }

    fn check_bounds(&self, addr: A) -> Result<(), PhysError> {
        if addr.as_u64() >= self.size {
            Err(PhysError::OutOfBounds {
                addr: addr.as_u64(),
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    fn check_range(&self, range: &AddrRange<A>) -> Result<(), PhysError> {
        if range.end().as_u64() > self.size {
            return Err(PhysError::OutOfBounds {
                addr: range.end().as_u64(),
                size: self.size,
            });
        }
        if !range.is_aligned(PageSize::Size4K) {
            return Err(PhysError::BadState {
                addr: range.start().as_u64(),
                what: "range not 4K-aligned",
            });
        }
        Ok(())
    }

    pub(crate) fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    pub(crate) fn buddy_mut(&mut self) -> &mut BuddyAllocator {
        &mut self.buddy
    }

    pub(crate) fn store_mut(&mut self) -> &mut FrameStore<A> {
        &mut self.store
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CompactionStats {
        &mut self.stats
    }
}

impl<A: Address> std::fmt::Debug for PhysMem<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("space", &A::SPACE)
            .field("size_bytes", &self.size)
            .field("free_bytes", &self.free_bytes())
            .field("bad_frames", &self.bad.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::{Hpa, GIB, MIB};
    use mv_types::rng::StdRng;

    #[test]
    fn alloc_honors_page_size_alignment() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(2 * GIB);
        let a4k = mem.alloc(PageSize::Size4K).unwrap();
        let a2m = mem.alloc(PageSize::Size2M).unwrap();
        let a1g = mem.alloc(PageSize::Size1G).unwrap();
        assert!(a4k.is_aligned(PageSize::Size4K));
        assert!(a2m.is_aligned(PageSize::Size2M));
        assert!(a1g.is_aligned(PageSize::Size1G));
        mem.free(a1g, PageSize::Size1G).unwrap();
        mem.free(a2m, PageSize::Size2M).unwrap();
        mem.free(a4k, PageSize::Size4K).unwrap();
        assert_eq!(mem.free_bytes(), 2 * GIB);
    }

    #[test]
    fn reserve_contiguous_is_aligned_and_exclusive() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(GIB);
        let r = mem.reserve_contiguous(256 * MIB, PageSize::Size2M).unwrap();
        assert!(r.start().is_aligned(PageSize::Size2M));
        assert_eq!(r.len(), 256 * MIB);
        // Subsequent allocations fall outside the reservation.
        for _ in 0..16 {
            let p = mem.alloc(PageSize::Size2M).unwrap();
            assert!(!r.contains(p));
        }
    }

    #[test]
    fn reserve_fails_when_fragmented() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut rng = StdRng::seed_from_u64(1);
        let _held = mem.fragment(&mut rng, 0.5);
        let err = mem.reserve_contiguous(32 * MIB, PageSize::Size4K).unwrap_err();
        assert!(matches!(err, PhysError::Fragmented { .. }));
    }

    #[test]
    fn bad_frames_are_never_allocated() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(MIB);
        let bad_addr = Hpa::new(0x4000);
        mem.mark_bad(bad_addr).unwrap();
        let mut seen = Vec::new();
        while let Ok(p) = mem.alloc(PageSize::Size4K) {
            assert_ne!(p, bad_addr);
            seen.push(p);
        }
        assert_eq!(seen.len() as u64, MIB / 4096 - 1);
    }

    #[test]
    fn bad_frame_splits_contiguous_reservation() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(16 * MIB);
        mem.mark_bad(Hpa::new(8 * MIB)).unwrap();
        // A single bad page in the middle blocks the full-range reservation
        // (the paper's Section V motivation)...
        assert!(mem.reserve_contiguous(16 * MIB, PageSize::Size4K).is_err());
        // ...but the bad-tolerant variant succeeds and reports the hole.
        let (range, bad) = mem
            .reserve_contiguous_allowing_bad(16 * MIB, PageSize::Size4K)
            .unwrap();
        assert_eq!(range.len(), 16 * MIB);
        assert_eq!(bad, vec![Hpa::new(8 * MIB)]);
    }

    #[test]
    fn mark_bad_of_allocated_frame_fails() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(MIB);
        let p = mem.alloc(PageSize::Size4K).unwrap();
        assert!(mem.mark_bad(p).is_err());
    }

    #[test]
    fn inject_bad_frames_is_seeded_and_in_range() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let range = AddrRange::new(Hpa::new(16 * MIB), Hpa::new(48 * MIB));
        let mut rng = StdRng::seed_from_u64(9);
        let bad = mem.inject_bad_frames(&mut rng, &range, 16).unwrap();
        assert_eq!(bad.len(), 16);
        for b in &bad {
            assert!(range.contains(*b));
            assert!(mem.bad_frames().is_bad(*b));
        }
    }

    #[test]
    fn read_write_round_trip() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(MIB);
        mem.write_u64(Hpa::new(0x8), 0x1234);
        assert_eq!(mem.read_u64(Hpa::new(0x8)), 0x1234);
        assert_eq!(mem.read_u64(Hpa::new(0x10)), 0);
    }

    #[test]
    fn free_clears_frame_contents() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(MIB);
        let p = mem.alloc(PageSize::Size4K).unwrap();
        mem.write_u64(p, 99);
        mem.free(p, PageSize::Size4K).unwrap();
        let p2 = mem.alloc(PageSize::Size4K).unwrap();
        assert_eq!(p2, p, "buddy hands back the lowest frame");
        assert_eq!(mem.read_u64(p2), 0, "recycled frame must read zero");
    }

    #[test]
    fn carve_and_release_round_trip() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(MIB);
        let r = AddrRange::new(Hpa::new(0x10000), Hpa::new(0x20000));
        mem.carve_range(&r).unwrap();
        assert!(mem.carve_range(&r).is_err());
        mem.release_range(&r).unwrap();
        assert_eq!(mem.free_bytes(), MIB);
    }

    #[test]
    fn stats_reflect_state() {
        let mut mem: PhysMem<Hpa> = PhysMem::new(MIB);
        let _ = mem.alloc(PageSize::Size4K).unwrap();
        let s = mem.stats();
        assert_eq!(s.size_bytes, MIB);
        assert_eq!(s.free_bytes, MIB - 4096);
        assert!(s.largest_free_run_bytes >= MIB / 2);
        assert_eq!(s.bad_frames, 0);
    }
}
