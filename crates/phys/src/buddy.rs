//! Binary buddy allocator over 4 KiB frames.
//!
//! The allocator tracks frames by index (frame 0 is physical address 0).
//! Blocks are power-of-two runs of frames, from order 0 (4 KiB) to order 18
//! (1 GiB), matching the three x86-64 mapping granularities. Besides the
//! usual `alloc`/`free`, it supports **carving** arbitrary aligned ranges out
//! of the free pool (used for boot-time contiguous reservations and for
//! modeling the I/O gap) and reports **merged free runs** that span buddy
//! boundaries, which fragmentation statistics and compaction need.

use std::collections::{BTreeMap, BTreeSet};

use crate::PhysError;

/// Highest supported block order (2^18 frames = 1 GiB).
pub const MAX_ORDER: u8 = 18;

/// Block metadata for an allocated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Block {
    pub order: u8,
    pub pinned: bool,
}

/// A binary buddy allocator over frame indices.
///
/// # Example
///
/// ```
/// use mv_phys::buddy::BuddyAllocator;
///
/// let mut b = BuddyAllocator::new(1024); // 4 MiB of frames
/// let frame = b.alloc(0)?;
/// let big = b.alloc(9)?; // one 2 MiB block
/// b.free(frame, 0)?;
/// b.free(big, 9)?;
/// assert_eq!(b.free_frames(), 1024);
/// # Ok::<(), mv_phys::PhysError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    nframes: u64,
    free_frames: u64,
    /// Free block start indices per order.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated blocks: start index -> metadata.
    allocated: BTreeMap<u64, Block>,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `[0, nframes)`, all free.
    ///
    /// `nframes` need not be a power of two; the range is covered greedily
    /// with maximal aligned blocks.
    pub fn new(nframes: u64) -> Self {
        let mut b = BuddyAllocator {
            nframes,
            free_frames: 0,
            free_lists: vec![BTreeSet::new(); MAX_ORDER as usize + 1],
            allocated: BTreeMap::new(),
        };
        b.insert_region(0, nframes);
        b
    }

    /// Inserts `[start, start+len)` into the free pool as maximal aligned
    /// blocks.
    fn insert_region(&mut self, mut start: u64, len: u64) {
        let end = start + len;
        while start < end {
            let align_order = if start == 0 {
                MAX_ORDER
            } else {
                (start.trailing_zeros() as u8).min(MAX_ORDER)
            };
            let mut order = align_order;
            while start + (1 << order) > end {
                order -= 1;
            }
            self.free_lists[order as usize].insert(start);
            self.free_frames += 1 << order;
            start += 1 << order;
        }
    }

    /// Total frames managed.
    #[inline]
    pub fn frames(&self) -> u64 {
        self.nframes
    }

    /// Frames currently free.
    #[inline]
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Number of allocated blocks (not frames).
    #[inline]
    pub fn allocated_blocks(&self) -> usize {
        self.allocated.len()
    }

    /// Allocates a block of `2^order` frames, returning its first frame
    /// index. Prefers the lowest-addressed suitable block, so allocation is
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::OutOfMemory`] if no block of sufficient order is
    /// free.
    pub fn alloc(&mut self, order: u8) -> Result<u64, PhysError> {
        if order > MAX_ORDER {
            // No block of this order can ever exist; surface it as the
            // allocation failure it is rather than aborting the process.
            return Err(PhysError::OutOfMemory {
                requested: (1u64 << order) * 4096,
                free: self.free_frames * 4096,
            });
        }
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&start) = self.free_lists[o as usize].iter().next() {
                found = Some((start, o));
                break;
            }
        }
        let (start, mut o) = found.ok_or(PhysError::OutOfMemory {
            requested: (1u64 << order) * 4096,
            free: self.free_frames * 4096,
        })?;
        self.free_lists[o as usize].remove(&start);
        // Split down to the requested order, returning upper halves to the
        // free lists.
        while o > order {
            o -= 1;
            self.free_lists[o as usize].insert(start + (1 << o));
        }
        self.free_frames -= 1 << order;
        self.allocated.insert(
            start,
            Block {
                order,
                pinned: false,
            },
        );
        Ok(start)
    }

    /// Frees the block of `2^order` frames starting at `start`, coalescing
    /// with free buddies.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] if the block is not currently
    /// allocated at that order.
    pub fn free(&mut self, start: u64, order: u8) -> Result<(), PhysError> {
        match self.allocated.get(&start) {
            Some(b) if b.order == order => {
                self.allocated.remove(&start);
            }
            Some(b) => {
                return Err(PhysError::BadState {
                    addr: start * 4096,
                    what: if b.order > order {
                        "freed with smaller order than allocated"
                    } else {
                        "freed with larger order than allocated"
                    },
                })
            }
            None => {
                return Err(PhysError::BadState {
                    addr: start * 4096,
                    what: "double free or never allocated",
                })
            }
        }
        self.free_frames += 1 << order;
        self.insert_free_coalescing(start, order);
        Ok(())
    }

    fn insert_free_coalescing(&mut self, mut start: u64, mut order: u8) {
        while order < MAX_ORDER {
            let buddy = start ^ (1 << order);
            if buddy + (1 << order) > self.nframes {
                break;
            }
            if !self.free_lists[order as usize].remove(&buddy) {
                break;
            }
            start = start.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(start);
    }

    /// Whether the frame at `idx` is currently allocated.
    pub fn is_allocated(&self, idx: u64) -> bool {
        self.block_containing(idx).is_some()
    }

    /// The allocated block `(start, order, pinned)` containing frame `idx`,
    /// if any.
    pub fn block_containing(&self, idx: u64) -> Option<(u64, u8, bool)> {
        let (&start, block) = self.allocated.range(..=idx).next_back()?;
        if idx < start + (1u64 << block.order) {
            Some((start, block.order, block.pinned))
        } else {
            None
        }
    }

    /// Marks the allocated block containing `idx` as pinned (unmovable by
    /// compaction) or movable.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] if no allocated block contains `idx`.
    pub fn set_pinned(&mut self, idx: u64, pinned: bool) -> Result<(), PhysError> {
        let not_allocated = PhysError::BadState {
            addr: idx * 4096,
            what: "pin of unallocated frame",
        };
        let Some((&start, block)) = self.allocated.range_mut(..=idx).next_back() else {
            return Err(not_allocated);
        };
        if idx >= start + (1u64 << block.order) {
            return Err(not_allocated);
        }
        block.pinned = pinned;
        Ok(())
    }

    /// Removes the specific range `[start, start+len)` from the free pool,
    /// marking it allocated. The range is decomposed into maximal aligned
    /// blocks, each recorded in the allocation map so [`Self::free_range`]
    /// can return it later.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] if any frame in the range is not
    /// free. On error, no frames are carved (the operation is atomic).
    pub fn carve(&mut self, start: u64, len: u64) -> Result<(), PhysError> {
        if start + len > self.nframes {
            return Err(PhysError::OutOfBounds {
                addr: (start + len) * 4096,
                size: self.nframes * 4096,
            });
        }
        // Validate first so failure leaves state untouched.
        for (bstart, border) in Self::aligned_blocks(start, len) {
            if !self.is_block_free(bstart, border) {
                return Err(PhysError::BadState {
                    addr: bstart * 4096,
                    what: "carve of non-free frames",
                });
            }
        }
        for (bstart, border) in Self::aligned_blocks(start, len) {
            self.remove_free_block(bstart, border)?;
            self.free_frames -= 1 << border;
            self.allocated.insert(
                bstart,
                Block {
                    order: border,
                    pinned: false,
                },
            );
        }
        Ok(())
    }

    /// Frees the range `[start, start+len)`. The range may be any
    /// combination of (parts of) allocated blocks: larger allocated blocks
    /// are split as needed, so a sub-range of a carved region can be
    /// returned independently.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] if any frame in the range is not
    /// currently allocated.
    pub fn free_range(&mut self, start: u64, len: u64) -> Result<(), PhysError> {
        for (bstart, border) in Self::aligned_blocks(start, len) {
            self.free_block_flexible(bstart, border)?;
        }
        Ok(())
    }

    /// Frees the exact block `[start, start+2^order)` regardless of how the
    /// underlying allocations tile it.
    fn free_block_flexible(&mut self, start: u64, order: u8) -> Result<(), PhysError> {
        match self.block_containing(start) {
            Some((bs, bo, _)) if bs == start && bo == order => self.free(start, order),
            Some((bs, bo, _)) if bo > order => {
                // Split the containing block until an exact match exists.
                debug_assert!(bs <= start);
                self.split_allocated(bs, bo, start, order)?;
                self.free(start, order)
            }
            _ => {
                if order == 0 {
                    return Err(PhysError::BadState {
                        addr: start * 4096,
                        what: "free of unallocated frame",
                    });
                }
                // The block is tiled by smaller allocations; free each half.
                let half = 1u64 << (order - 1);
                self.free_block_flexible(start, order - 1)?;
                self.free_block_flexible(start + half, order - 1)
            }
        }
    }

    /// Splits the allocated block `(bs, bo)` into halves (inheriting the
    /// pinned flag) until a block exactly `(target, target_order)` exists.
    fn split_allocated(
        &mut self,
        bs: u64,
        bo: u8,
        target: u64,
        target_order: u8,
    ) -> Result<(), PhysError> {
        let block = self.allocated.remove(&bs).ok_or(PhysError::BadState {
            addr: bs * 4096,
            what: "split of unallocated block",
        })?;
        debug_assert_eq!(block.order, bo);
        let mut cur = bs;
        let mut cur_order = bo;
        while cur_order > target_order {
            cur_order -= 1;
            let half = 1u64 << cur_order;
            let (keep, descend) = if target < cur + half {
                (cur + half, cur)
            } else {
                (cur, cur + half)
            };
            self.allocated.insert(
                keep,
                Block {
                    order: cur_order,
                    pinned: block.pinned,
                },
            );
            cur = descend;
        }
        debug_assert_eq!(cur, target);
        self.allocated.insert(
            cur,
            Block {
                order: target_order,
                pinned: block.pinned,
            },
        );
        Ok(())
    }

    /// Decomposes `[start, start+len)` into maximal aligned power-of-two
    /// blocks, yielding `(start, order)` pairs.
    pub(crate) fn aligned_blocks(mut start: u64, len: u64) -> Vec<(u64, u8)> {
        let end = start + len;
        let mut out = Vec::new();
        while start < end {
            let align_order = if start == 0 {
                MAX_ORDER
            } else {
                (start.trailing_zeros() as u8).min(MAX_ORDER)
            };
            let mut order = align_order;
            while start + (1u64 << order) > end {
                order -= 1;
            }
            out.push((start, order));
            start += 1 << order;
        }
        out
    }

    /// Whether the exact block `[start, start + 2^order)` is entirely free.
    fn is_block_free(&self, start: u64, order: u8) -> bool {
        // A block is free iff it is contained in some free-list entry.
        for o in order..=MAX_ORDER {
            let aligned = start & !((1u64 << o) - 1);
            if self.free_lists[o as usize].contains(&aligned)
                && start + (1 << order) <= aligned + (1 << o)
            {
                return true;
            }
        }
        false
    }

    /// Removes the exact free block `[start, start+2^order)`, splitting a
    /// containing larger free block if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::BadState`] if the block is not free (callers
    /// normally validate first, so this indicates an allocator bug — but it
    /// surfaces as a typed error rather than aborting the process).
    fn remove_free_block(&mut self, start: u64, order: u8) -> Result<(), PhysError> {
        if self.free_lists[order as usize].remove(&start) {
            return Ok(());
        }
        // Find the containing free block and split.
        for o in (order + 1)..=MAX_ORDER {
            let aligned = start & !((1u64 << o) - 1);
            if self.free_lists[o as usize].remove(&aligned) {
                // Split down, keeping the halves that do not contain `start`.
                let mut cur = aligned;
                let mut cur_order = o;
                while cur_order > order {
                    cur_order -= 1;
                    let half = 1u64 << cur_order;
                    if start < cur + half {
                        // Target in lower half; free the upper half.
                        self.free_lists[cur_order as usize].insert(cur + half);
                    } else {
                        // Target in upper half; free the lower half.
                        self.free_lists[cur_order as usize].insert(cur);
                        cur += half;
                    }
                }
                debug_assert_eq!(cur, start);
                return Ok(());
            }
        }
        Err(PhysError::BadState {
            addr: start * 4096,
            what: "remove of non-free block",
        })
    }

    /// Iterates over all free blocks as `(start, order)` pairs, in address
    /// order.
    pub fn free_blocks(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        let mut all: Vec<(u64, u8)> = self
            .free_lists
            .iter()
            .enumerate()
            .flat_map(|(o, set)| set.iter().map(move |&s| (s, o as u8)))
            .collect();
        all.sort_unstable();
        all.into_iter()
    }

    /// Iterates over allocated blocks as `(start, order, pinned)`.
    pub fn allocated_iter(&self) -> impl Iterator<Item = (u64, u8, bool)> + '_ {
        self.allocated
            .iter()
            .map(|(&s, b)| (s, b.order, b.pinned))
    }

    /// Merged free runs `(start, len)` in frames, coalescing adjacent free
    /// blocks across buddy boundaries.
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for (start, order) in self.free_blocks() {
            let len = 1u64 << order;
            match runs.last_mut() {
                Some((rs, rl)) if *rs + *rl == start => *rl += len,
                _ => runs.push((start, len)),
            }
        }
        runs
    }

    /// Length in frames of the largest merged free run.
    pub fn largest_free_run(&self) -> u64 {
        self.free_runs().iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// Finds the lowest free run of at least `nframes` frames whose start is
    /// aligned to `align_frames` (a power of two), returning the aligned
    /// start index.
    pub fn find_free_run(&self, nframes: u64, align_frames: u64) -> Option<u64> {
        debug_assert!(align_frames.is_power_of_two());
        for (start, len) in self.free_runs() {
            let aligned = (start + align_frames - 1) & !(align_frames - 1);
            if aligned + nframes <= start + len {
                return Some(aligned);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let b = BuddyAllocator::new(1 << 18);
        assert_eq!(b.free_frames(), 1 << 18);
        assert_eq!(b.largest_free_run(), 1 << 18);
        assert_eq!(b.allocated_blocks(), 0);
    }

    #[test]
    fn non_power_of_two_sizes_are_covered() {
        let b = BuddyAllocator::new(1000);
        assert_eq!(b.free_frames(), 1000);
        assert_eq!(b.largest_free_run(), 1000);
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut b = BuddyAllocator::new(1024);
        let f = b.alloc(0).unwrap();
        assert_eq!(b.free_frames(), 1023);
        assert!(b.is_allocated(f));
        b.free(f, 0).unwrap();
        assert_eq!(b.free_frames(), 1024);
        assert_eq!(b.largest_free_run(), 1024);
        assert!(!b.is_allocated(f));
    }

    #[test]
    fn alloc_prefers_lowest_address() {
        let mut b = BuddyAllocator::new(1024);
        assert_eq!(b.alloc(0).unwrap(), 0);
        assert_eq!(b.alloc(0).unwrap(), 1);
        assert_eq!(b.alloc(9).unwrap(), 512);
    }

    #[test]
    fn split_and_coalesce() {
        let mut b = BuddyAllocator::new(1024);
        let frames: Vec<u64> = (0..1024).map(|_| b.alloc(0).unwrap()).collect();
        assert_eq!(b.free_frames(), 0);
        assert!(b.alloc(0).is_err());
        for f in frames {
            b.free(f, 0).unwrap();
        }
        assert_eq!(b.free_frames(), 1024);
        // Everything coalesced back into one block.
        assert_eq!(b.free_blocks().count(), 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut b = BuddyAllocator::new(64);
        let f = b.alloc(0).unwrap();
        b.free(f, 0).unwrap();
        let err = b.free(f, 0).unwrap_err();
        assert!(matches!(err, PhysError::BadState { .. }));
    }

    #[test]
    fn wrong_order_free_is_rejected() {
        let mut b = BuddyAllocator::new(1024);
        let f = b.alloc(3).unwrap();
        assert!(b.free(f, 2).is_err());
        assert!(b.free(f, 4).is_err());
        b.free(f, 3).unwrap();
    }

    #[test]
    fn out_of_memory_error_reports_free() {
        let mut b = BuddyAllocator::new(8);
        let err = b.alloc(4).unwrap_err();
        assert_eq!(
            err,
            PhysError::OutOfMemory {
                requested: 16 * 4096,
                free: 8 * 4096
            }
        );
    }

    #[test]
    fn carve_specific_range() {
        let mut b = BuddyAllocator::new(1 << 12);
        b.carve(100, 50).unwrap();
        assert_eq!(b.free_frames(), (1 << 12) - 50);
        assert!(b.is_allocated(100));
        assert!(b.is_allocated(149));
        assert!(!b.is_allocated(99));
        assert!(!b.is_allocated(150));
        b.free_range(100, 50).unwrap();
        assert_eq!(b.free_frames(), 1 << 12);
        assert_eq!(b.free_blocks().count(), 1);
    }

    #[test]
    fn carve_of_allocated_range_fails_atomically() {
        let mut b = BuddyAllocator::new(256);
        b.carve(10, 10).unwrap();
        let before: Vec<_> = b.free_blocks().collect();
        assert!(b.carve(5, 10).is_err()); // overlaps [10,20)
        let after: Vec<_> = b.free_blocks().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn carve_out_of_bounds_fails() {
        let mut b = BuddyAllocator::new(256);
        assert!(matches!(
            b.carve(200, 100),
            Err(PhysError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn aligned_block_decomposition_covers_range_exactly() {
        for (start, len) in [(0u64, 7u64), (3, 13), (100, 50), (0, 1 << 18), (5, 1)] {
            let blocks = BuddyAllocator::aligned_blocks(start, len);
            let mut cursor = start;
            for (s, o) in &blocks {
                assert_eq!(*s, cursor);
                assert_eq!(s % (1 << o), 0, "block not aligned");
                cursor += 1u64 << o;
            }
            assert_eq!(cursor, start + len);
        }
    }

    #[test]
    fn free_runs_merge_across_buddy_boundaries() {
        let mut b = BuddyAllocator::new(64);
        // Allocate everything then free a run [10, 30) that crosses buddy
        // boundaries.
        b.carve(0, 64).unwrap();
        b.free_range(10, 20).unwrap();
        assert_eq!(b.free_runs(), vec![(10, 20)]);
        assert_eq!(b.largest_free_run(), 20);
    }

    #[test]
    fn find_free_run_respects_alignment() {
        let mut b = BuddyAllocator::new(1024);
        b.carve(0, 100).unwrap();
        // Free space starts at 100; the first 64-aligned start is 128.
        assert_eq!(b.find_free_run(64, 64), Some(128));
        assert_eq!(b.find_free_run(900, 1), Some(100));
        assert_eq!(b.find_free_run(925, 1), None);
    }

    #[test]
    fn pinning_blocks() {
        let mut b = BuddyAllocator::new(64);
        let f = b.alloc(2).unwrap();
        b.set_pinned(f + 3, true).unwrap();
        assert_eq!(b.block_containing(f), Some((f, 2, true)));
        b.set_pinned(f, false).unwrap();
        assert_eq!(b.block_containing(f + 1), Some((f, 2, false)));
        assert!(b.set_pinned(63, true).is_err());
    }

    #[test]
    fn mixed_order_stress_preserves_frame_accounting() {
        let mut b = BuddyAllocator::new(1 << 14);
        let mut live = Vec::new();
        // Deterministic pseudo-random order pattern.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let order = (x >> 60) as u8 % 5;
            if x & 1 == 0 || live.is_empty() {
                if let Ok(f) = b.alloc(order) {
                    live.push((f, order));
                }
            } else {
                let idx = (x as usize >> 8) % live.len();
                let (f, o) = live.swap_remove(idx);
                b.free(f, o).unwrap();
            }
        }
        let live_frames: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
        assert_eq!(b.free_frames() + live_frames, 1 << 14);
        for (f, o) in live {
            b.free(f, o).unwrap();
        }
        assert_eq!(b.free_frames(), 1 << 14);
        assert_eq!(b.free_blocks().count(), 1);
    }
}
