//! Sparse backing store for frame contents.
//!
//! Page tables in this simulator are *real* data structures: each page-table
//! page occupies one simulated physical frame holding 512 64-bit entries,
//! and page walks read those entries through this store. Only frames that
//! have ever been written are materialized, so multi-GiB physical spaces stay
//! cheap to model.

use std::collections::HashMap;

use mv_types::{Address, PAGE_SHIFT_4K};

use crate::ENTRIES_PER_FRAME;

/// Sparse map from frame index to 512-entry frame contents.
///
/// # Example
///
/// ```
/// use mv_phys::FrameStore;
/// use mv_types::Hpa;
///
/// let mut store: FrameStore<Hpa> = FrameStore::new();
/// store.write_u64(Hpa::new(0x1008), 0xdead_beef);
/// assert_eq!(store.read_u64(Hpa::new(0x1008)), 0xdead_beef);
/// assert_eq!(store.read_u64(Hpa::new(0x2000)), 0); // untouched memory reads zero
/// ```
pub struct FrameStore<A> {
    frames: HashMap<u64, Box<[u64; ENTRIES_PER_FRAME]>>,
    _space: core::marker::PhantomData<fn() -> A>,
}

impl<A: Address> FrameStore<A> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            frames: HashMap::new(),
            _space: core::marker::PhantomData,
        }
    }

    /// Reads the naturally-aligned 64-bit word at `addr`. Untouched memory
    /// reads as zero, matching freshly-zeroed frames.
    pub fn read_u64(&self, addr: A) -> u64 {
        let raw = addr.as_u64();
        debug_assert_eq!(raw % 8, 0, "unaligned 64-bit read at {raw:#x}");
        let frame = raw >> PAGE_SHIFT_4K;
        let idx = ((raw & 0xfff) / 8) as usize;
        self.frames.get(&frame).map_or(0, |f| f[idx])
    }

    /// Writes the naturally-aligned 64-bit word at `addr`, materializing the
    /// frame if needed.
    pub fn write_u64(&mut self, addr: A, value: u64) {
        let raw = addr.as_u64();
        debug_assert_eq!(raw % 8, 0, "unaligned 64-bit write at {raw:#x}");
        let frame = raw >> PAGE_SHIFT_4K;
        let idx = ((raw & 0xfff) / 8) as usize;
        self.frames
            .entry(frame)
            .or_insert_with(|| Box::new([0; ENTRIES_PER_FRAME]))[idx] = value;
    }

    /// Moves the contents of frame `from` to frame `to` (frame indices, not
    /// byte addresses). Used by memory compaction. A source frame that was
    /// never written moves as all-zeroes (i.e., clears the destination).
    pub fn relocate_frame(&mut self, from: u64, to: u64) {
        match self.frames.remove(&from) {
            Some(contents) => {
                self.frames.insert(to, contents);
            }
            None => {
                self.frames.remove(&to);
            }
        }
    }

    /// Discards the contents of frame `frame_idx` (frees the backing
    /// storage).
    pub fn clear_frame(&mut self, frame_idx: u64) {
        self.frames.remove(&frame_idx);
    }

    /// Number of materialized frames.
    pub fn materialized_frames(&self) -> usize {
        self.frames.len()
    }
}

impl<A: Address> Default for FrameStore<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Address> std::fmt::Debug for FrameStore<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameStore")
            .field("space", &A::SPACE)
            .field("materialized_frames", &self.frames.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Hpa;

    #[test]
    fn read_write_round_trip() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x3000), 1);
        s.write_u64(Hpa::new(0x3ff8), 2);
        assert_eq!(s.read_u64(Hpa::new(0x3000)), 1);
        assert_eq!(s.read_u64(Hpa::new(0x3ff8)), 2);
        assert_eq!(s.materialized_frames(), 1);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let s: FrameStore<Hpa> = FrameStore::new();
        assert_eq!(s.read_u64(Hpa::new(0x0)), 0);
        assert_eq!(s.read_u64(Hpa::new(0xffff_f000)), 0);
        assert_eq!(s.materialized_frames(), 0);
    }

    #[test]
    fn relocate_moves_contents() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x1000), 42);
        s.relocate_frame(1, 5);
        assert_eq!(s.read_u64(Hpa::new(0x1000)), 0);
        assert_eq!(s.read_u64(Hpa::new(0x5000)), 42);
    }

    #[test]
    fn relocate_of_empty_source_clears_destination() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x5000), 42);
        s.relocate_frame(1, 5); // frame 1 never written
        assert_eq!(s.read_u64(Hpa::new(0x5000)), 0);
    }

    #[test]
    fn clear_frame_discards_contents() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x2000), 7);
        s.clear_frame(2);
        assert_eq!(s.read_u64(Hpa::new(0x2000)), 0);
        assert_eq!(s.materialized_frames(), 0);
    }

    #[test]
    fn distinct_words_in_same_frame() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        for i in 0..512u64 {
            s.write_u64(Hpa::new(0x8000 + i * 8), i + 1);
        }
        for i in 0..512u64 {
            assert_eq!(s.read_u64(Hpa::new(0x8000 + i * 8)), i + 1);
        }
        assert_eq!(s.materialized_frames(), 1);
    }
}
