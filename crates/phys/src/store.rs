//! Sparse backing store for frame contents.
//!
//! Page tables in this simulator are *real* data structures: each page-table
//! page occupies one simulated physical frame holding 512 64-bit entries,
//! and page walks read those entries through this store. Only frames that
//! have ever been written are materialized, so multi-GiB physical spaces stay
//! cheap to model.
//!
//! Physical spaces are dense — frames number `0..size/4K` with no holes —
//! so the store is a directly-indexed page directory (`Vec` of lazily
//! boxed frames) rather than a hash map. Page walks read several entries
//! per access; indexing by frame number keeps each read to a bounds check
//! and two loads, where hashing the frame number would cost more than the
//! walk step it models. The directory grows on first write to a frame, so
//! an empty store stays empty-sized and untouched tails of large spaces
//! cost one pointer-sized slot each only once something above them is
//! written.

use mv_types::{Address, PAGE_SHIFT_4K};

use crate::ENTRIES_PER_FRAME;

/// Directly-indexed map from frame index to 512-entry frame contents.
///
/// # Example
///
/// ```
/// use mv_phys::FrameStore;
/// use mv_types::Hpa;
///
/// let mut store: FrameStore<Hpa> = FrameStore::new();
/// store.write_u64(Hpa::new(0x1008), 0xdead_beef);
/// assert_eq!(store.read_u64(Hpa::new(0x1008)), 0xdead_beef);
/// assert_eq!(store.read_u64(Hpa::new(0x2000)), 0); // untouched memory reads zero
/// ```
pub struct FrameStore<A> {
    frames: Vec<Option<Box<[u64; ENTRIES_PER_FRAME]>>>,
    _space: core::marker::PhantomData<fn() -> A>,
}

impl<A: Address> FrameStore<A> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            frames: Vec::new(),
            _space: core::marker::PhantomData,
        }
    }

    /// Reads the naturally-aligned 64-bit word at `addr`. Untouched memory
    /// reads as zero, matching freshly-zeroed frames.
    #[inline]
    pub fn read_u64(&self, addr: A) -> u64 {
        let raw = addr.as_u64();
        debug_assert_eq!(raw % 8, 0, "unaligned 64-bit read at {raw:#x}");
        let frame = (raw >> PAGE_SHIFT_4K) as usize;
        let idx = ((raw & 0xfff) >> 3) as usize;
        match self.frames.get(frame) {
            Some(Some(f)) => f[idx],
            _ => 0,
        }
    }

    /// Writes the naturally-aligned 64-bit word at `addr`, materializing the
    /// frame if needed.
    pub fn write_u64(&mut self, addr: A, value: u64) {
        let raw = addr.as_u64();
        debug_assert_eq!(raw % 8, 0, "unaligned 64-bit write at {raw:#x}");
        let frame = (raw >> PAGE_SHIFT_4K) as usize;
        let idx = ((raw & 0xfff) >> 3) as usize;
        if frame >= self.frames.len() {
            self.frames.resize_with(frame + 1, || None);
        }
        self.frames[frame].get_or_insert_with(|| Box::new([0; ENTRIES_PER_FRAME]))[idx] = value;
    }

    /// Moves the contents of frame `from` to frame `to` (frame indices, not
    /// byte addresses). Used by memory compaction. A source frame that was
    /// never written moves as all-zeroes (i.e., clears the destination).
    pub fn relocate_frame(&mut self, from: u64, to: u64) {
        let contents = self
            .frames
            .get_mut(from as usize)
            .and_then(|slot| slot.take());
        match contents {
            Some(contents) => {
                let to = to as usize;
                if to >= self.frames.len() {
                    self.frames.resize_with(to + 1, || None);
                }
                self.frames[to] = Some(contents);
            }
            None => self.clear_frame(to),
        }
    }

    /// Discards the contents of frame `frame_idx` (frees the backing
    /// storage).
    pub fn clear_frame(&mut self, frame_idx: u64) {
        if let Some(slot) = self.frames.get_mut(frame_idx as usize) {
            *slot = None;
        }
    }

    /// Number of materialized frames.
    pub fn materialized_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }
}

impl<A: Address> Default for FrameStore<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Address> std::fmt::Debug for FrameStore<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameStore")
            .field("space", &A::SPACE)
            .field("materialized_frames", &self.materialized_frames())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Hpa;

    #[test]
    fn read_write_round_trip() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x3000), 1);
        s.write_u64(Hpa::new(0x3ff8), 2);
        assert_eq!(s.read_u64(Hpa::new(0x3000)), 1);
        assert_eq!(s.read_u64(Hpa::new(0x3ff8)), 2);
        assert_eq!(s.materialized_frames(), 1);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let s: FrameStore<Hpa> = FrameStore::new();
        assert_eq!(s.read_u64(Hpa::new(0x0)), 0);
        assert_eq!(s.read_u64(Hpa::new(0xffff_f000)), 0);
        assert_eq!(s.materialized_frames(), 0);
    }

    #[test]
    fn relocate_moves_contents() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x1000), 42);
        s.relocate_frame(1, 5);
        assert_eq!(s.read_u64(Hpa::new(0x1000)), 0);
        assert_eq!(s.read_u64(Hpa::new(0x5000)), 42);
    }

    #[test]
    fn relocate_of_empty_source_clears_destination() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x5000), 42);
        s.relocate_frame(1, 5); // frame 1 never written
        assert_eq!(s.read_u64(Hpa::new(0x5000)), 0);
    }

    #[test]
    fn relocate_from_beyond_the_directory_clears_destination() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x2000), 9);
        // Source frame far above anything ever written: moves as zeroes.
        s.relocate_frame(1 << 30, 2);
        assert_eq!(s.read_u64(Hpa::new(0x2000)), 0);
        assert_eq!(s.materialized_frames(), 0);
    }

    #[test]
    fn clear_frame_discards_contents() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        s.write_u64(Hpa::new(0x2000), 7);
        s.clear_frame(2);
        assert_eq!(s.read_u64(Hpa::new(0x2000)), 0);
        assert_eq!(s.materialized_frames(), 0);
    }

    #[test]
    fn distinct_words_in_same_frame() {
        let mut s: FrameStore<Hpa> = FrameStore::new();
        for i in 0..512u64 {
            s.write_u64(Hpa::new(0x8000 + i * 8), i + 1);
        }
        for i in 0..512u64 {
            assert_eq!(s.read_u64(Hpa::new(0x8000 + i * 8)), i + 1);
        }
        assert_eq!(s.materialized_frames(), 1);
    }
}
