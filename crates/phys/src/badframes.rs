//! Bad-frame (hard-fault) tracking.
//!
//! Commodity OSes keep faulty physical pages on a bad-page list so they are
//! never handed to applications (paper Section V). With direct segments a
//! *single* bad frame inside the would-be segment range blocks creation of
//! the segment — the motivation for the escape filter. This module models
//! the list of permanently faulty frames.

use std::collections::BTreeSet;

use mv_types::{AddrRange, Address, PAGE_SHIFT_4K, PAGE_SIZE_4K};
use mv_types::rng::IteratorRandom;
use mv_types::rng::Rng;

/// Set of permanently faulty 4 KiB frames in a physical address space.
///
/// # Example
///
/// ```
/// use mv_phys::BadFrames;
/// use mv_types::{AddrRange, Hpa};
///
/// let mut bad: BadFrames<Hpa> = BadFrames::new();
/// bad.mark(Hpa::new(0x5000));
/// assert!(bad.is_bad(Hpa::new(0x5123)));
/// let r = AddrRange::new(Hpa::new(0x4000), Hpa::new(0x8000));
/// assert_eq!(bad.bad_in_range(&r), vec![Hpa::new(0x5000)]);
/// ```
pub struct BadFrames<A> {
    frames: BTreeSet<u64>,
    _space: core::marker::PhantomData<fn() -> A>,
}

impl<A: Address> BadFrames<A> {
    /// Creates an empty bad-frame list.
    pub fn new() -> Self {
        Self {
            frames: BTreeSet::new(),
            _space: core::marker::PhantomData,
        }
    }

    /// Marks the frame containing `addr` as bad.
    pub fn mark(&mut self, addr: A) {
        self.frames.insert(addr.as_u64() >> PAGE_SHIFT_4K);
    }

    /// Whether the frame containing `addr` is bad.
    pub fn is_bad(&self, addr: A) -> bool {
        self.frames.contains(&(addr.as_u64() >> PAGE_SHIFT_4K))
    }

    /// Number of bad frames.
    pub fn count(&self) -> usize {
        self.frames.len()
    }

    /// Base addresses of bad frames falling inside `range`, in address
    /// order.
    pub fn bad_in_range(&self, range: &AddrRange<A>) -> Vec<A> {
        let start = range.start().as_u64() >> PAGE_SHIFT_4K;
        let end = range.end().as_u64().div_ceil(PAGE_SIZE_4K);
        self.frames
            .range(start..end)
            .map(|&f| A::from_u64(f << PAGE_SHIFT_4K))
            .collect()
    }

    /// Whether any bad frame falls inside `range`.
    pub fn any_in_range(&self, range: &AddrRange<A>) -> bool {
        let start = range.start().as_u64() >> PAGE_SHIFT_4K;
        let end = range.end().as_u64().div_ceil(PAGE_SIZE_4K);
        self.frames.range(start..end).next().is_some()
    }

    /// Marks `n` distinct random frames within `range` as bad (used by the
    /// Figure 13 escape-filter experiment, which draws 30 random fault sets
    /// per count). Frames already bad are not double-counted; exactly `n`
    /// *new* bad frames are added.
    ///
    /// # Panics
    ///
    /// Panics if `range` has fewer than `n` good frames.
    pub fn inject_random<R: Rng>(&mut self, rng: &mut R, range: &AddrRange<A>, n: usize) {
        let start = range.start().as_u64() >> PAGE_SHIFT_4K;
        let end = range.end().as_u64() >> PAGE_SHIFT_4K;
        let candidates = (start..end).filter(|f| !self.frames.contains(f));
        let chosen = candidates.choose_multiple(rng, n);
        assert_eq!(chosen.len(), n, "range has fewer than {n} good frames");
        self.frames.extend(chosen);
    }

    /// Iterates over bad frame base addresses in address order.
    pub fn iter(&self) -> impl Iterator<Item = A> + '_ {
        self.frames.iter().map(|&f| A::from_u64(f << PAGE_SHIFT_4K))
    }
}

impl<A: Address> Default for BadFrames<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Address> std::fmt::Debug for BadFrames<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BadFrames")
            .field("space", &A::SPACE)
            .field("count", &self.frames.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Hpa;
    use mv_types::rng::StdRng;

    fn range(start: u64, end: u64) -> AddrRange<Hpa> {
        AddrRange::new(Hpa::new(start), Hpa::new(end))
    }

    #[test]
    fn mark_and_query() {
        let mut bad: BadFrames<Hpa> = BadFrames::new();
        assert!(!bad.is_bad(Hpa::new(0x5000)));
        bad.mark(Hpa::new(0x5abc));
        assert!(bad.is_bad(Hpa::new(0x5000)));
        assert!(bad.is_bad(Hpa::new(0x5fff)));
        assert!(!bad.is_bad(Hpa::new(0x6000)));
        assert_eq!(bad.count(), 1);
    }

    #[test]
    fn range_queries() {
        let mut bad: BadFrames<Hpa> = BadFrames::new();
        bad.mark(Hpa::new(0x3000));
        bad.mark(Hpa::new(0x9000));
        let r = range(0x2000, 0x8000);
        assert!(bad.any_in_range(&r));
        assert_eq!(bad.bad_in_range(&r), vec![Hpa::new(0x3000)]);
        assert!(!bad.any_in_range(&range(0x4000, 0x9000)));
        assert!(bad.any_in_range(&range(0x9000, 0x9001)));
    }

    #[test]
    fn inject_random_adds_exactly_n_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut bad: BadFrames<Hpa> = BadFrames::new();
        let r = range(0x10_000, 0x100_000);
        bad.inject_random(&mut rng, &r, 16);
        assert_eq!(bad.count(), 16);
        for f in bad.iter() {
            assert!(r.contains(f));
        }
    }

    #[test]
    fn inject_random_is_deterministic_per_seed() {
        let r = range(0, 0x1000_0000);
        let collect = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut bad: BadFrames<Hpa> = BadFrames::new();
            bad.inject_random(&mut rng, &r, 8);
            bad.iter().collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    #[should_panic(expected = "good frames")]
    fn inject_more_than_available_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bad: BadFrames<Hpa> = BadFrames::new();
        bad.inject_random(&mut rng, &range(0, 0x2000), 3);
    }
}
