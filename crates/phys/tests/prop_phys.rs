//! Property-based tests for the physical-memory substrate.

use mv_phys::PhysMem;
use mv_types::{Hpa, PageSize, MIB};
use proptest::prelude::*;

/// A random sequence of allocator operations.
#[derive(Debug, Clone)]
enum Op {
    Alloc(PageSize),
    FreeNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop_oneof![
            Just(Op::Alloc(PageSize::Size4K)),
            Just(Op::Alloc(PageSize::Size2M)),
        ],
        2 => any::<usize>().prop_map(Op::FreeNth),
    ]
}

proptest! {
    /// Allocation never double-hands-out memory, frees restore accounting,
    /// and a fully-freed space coalesces back to one run.
    #[test]
    fn allocator_conserves_frames(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let total = 16 * MIB;
        let mut mem: PhysMem<Hpa> = PhysMem::new(total);
        let mut live: Vec<(Hpa, PageSize)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(addr) = mem.alloc(size) {
                        // No overlap with any live allocation.
                        for &(other, osize) in &live {
                            let a = addr.as_u64();
                            let b = other.as_u64();
                            prop_assert!(
                                a + size.bytes() <= b || b + osize.bytes() <= a,
                                "overlapping allocations {addr:?} and {other:?}"
                            );
                        }
                        prop_assert!(addr.is_aligned(size));
                        live.push((addr, size));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (addr, size) = live.swap_remove(n % live.len());
                        mem.free(addr, size).unwrap();
                    }
                }
            }
            let live_bytes: u64 = live.iter().map(|&(_, s)| s.bytes()).sum();
            prop_assert_eq!(mem.free_bytes() + live_bytes, total);
        }

        for (addr, size) in live.drain(..) {
            mem.free(addr, size).unwrap();
        }
        prop_assert_eq!(mem.free_bytes(), total);
        prop_assert_eq!(mem.stats().largest_free_run_bytes, total);
    }

    /// Reservations are disjoint from each other and later allocations.
    #[test]
    fn reservations_are_exclusive(lens in proptest::collection::vec(1u64..(2 * MIB), 1..8)) {
        let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut ranges = Vec::new();
        for len in lens {
            if let Ok(r) = mem.reserve_contiguous(len, PageSize::Size4K) {
                for other in &ranges {
                    prop_assert!(!r.overlaps(other));
                }
                ranges.push(r);
            }
        }
        for _ in 0..32 {
            if let Ok(p) = mem.alloc(PageSize::Size4K) {
                for r in &ranges {
                    prop_assert!(!r.contains(p));
                }
            }
        }
    }

    /// Compaction preserves frame contents under the relocation map.
    #[test]
    fn compaction_preserves_contents(
        seed in any::<u64>(),
        occupancy in 0.05f64..0.4,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut mem: PhysMem<Hpa> = PhysMem::new(8 * MIB);
        let mut rng = StdRng::seed_from_u64(seed);
        let held = mem.fragment(&mut rng, occupancy);
        // Stamp every held frame with a value derived from its identity.
        for (i, &f) in held.iter().enumerate() {
            mem.write_u64(f, i as u64 + 1);
        }
        let mut location: std::collections::HashMap<Hpa, Hpa> =
            held.iter().map(|&f| (f, f)).collect();

        let out = mem.compact_and_reserve(4 * MIB, PageSize::Size4K, false, &mut |src, dst| {
            // Find which logical frame currently lives at src.
            let logical = *location
                .iter()
                .find(|&(_, &cur)| cur == src)
                .expect("moved frame must be tracked")
                .0;
            location.insert(logical, dst);
        });
        if let Ok(out) = out {
            prop_assert_eq!(out.range.len(), 4 * MIB);
            for (i, f) in held.iter().enumerate() {
                let cur = location[f];
                prop_assert_eq!(mem.read_u64(cur), i as u64 + 1);
                prop_assert!(!out.range.contains(cur));
            }
        }
    }
}
