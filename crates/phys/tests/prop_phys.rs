//! Property-based tests for the physical-memory substrate, driven by the
//! workspace's internal deterministic RNG.

use mv_phys::PhysMem;
use mv_types::rng::{Rng, StdRng};
use mv_types::{AddrRange, Hpa, PageSize, MIB};

/// A random sequence of allocator operations.
#[derive(Debug, Clone)]
enum Op {
    Alloc(PageSize),
    FreeNth(usize),
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..5) {
        0 | 1 => Op::Alloc(PageSize::Size4K),
        2 => Op::Alloc(PageSize::Size2M),
        _ => Op::FreeNth(rng.gen_range(0usize..usize::MAX)),
    }
}

/// Allocation never double-hands-out memory, frees restore accounting,
/// and a fully-freed space coalesces back to one run.
#[test]
fn allocator_conserves_frames() {
    for case in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0x0947_5000u64 + case);
        let n_ops = rng.gen_range(1usize..200);
        let total = 16 * MIB;
        let mut mem: PhysMem<Hpa> = PhysMem::new(total);
        let mut live: Vec<(Hpa, PageSize)> = Vec::new();

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Alloc(size) => {
                    if let Ok(addr) = mem.alloc(size) {
                        // No overlap with any live allocation.
                        for &(other, osize) in &live {
                            let a = addr.as_u64();
                            let b = other.as_u64();
                            assert!(
                                a + size.bytes() <= b || b + osize.bytes() <= a,
                                "case {case}: overlapping allocations {addr:?} and {other:?}"
                            );
                        }
                        assert!(addr.is_aligned(size), "case {case}");
                        live.push((addr, size));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (addr, size) = live.swap_remove(n % live.len());
                        mem.free(addr, size).unwrap();
                    }
                }
            }
            let live_bytes: u64 = live.iter().map(|&(_, s)| s.bytes()).sum();
            assert_eq!(mem.free_bytes() + live_bytes, total, "case {case}");
        }

        for (addr, size) in live.drain(..) {
            mem.free(addr, size).unwrap();
        }
        assert_eq!(mem.free_bytes(), total, "case {case}");
        assert_eq!(mem.stats().largest_free_run_bytes, total, "case {case}");
    }
}

/// Reservations are disjoint from each other and later allocations.
#[test]
fn reservations_are_exclusive() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x0947_5100u64 + case);
        let n = rng.gen_range(1usize..8);
        let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut ranges = Vec::new();
        for _ in 0..n {
            let len = rng.gen_range(1u64..(2 * MIB));
            if let Ok(r) = mem.reserve_contiguous(len, PageSize::Size4K) {
                for other in &ranges {
                    assert!(!r.overlaps(other), "case {case}");
                }
                ranges.push(r);
            }
        }
        for _ in 0..32 {
            if let Ok(p) = mem.alloc(PageSize::Size4K) {
                for r in &ranges {
                    assert!(!r.contains(p), "case {case}");
                }
            }
        }
    }
}

/// Chaos-style op mixes — allocation, frees, scattered bad-frame loss,
/// contiguity reservations, and compaction — never corrupt the free list:
/// accounting stays exact, handed-out frames never overlap, and compaction
/// never double-maps a relocated frame.
#[test]
fn chaos_op_mixes_preserve_free_list_invariants() {
    let total = 16 * MIB;
    let span = AddrRange::new(Hpa::ZERO, Hpa::new(total));
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x0947_5300u64 + case);
        let mut mem: PhysMem<Hpa> = PhysMem::new(total);
        let mut live: Vec<Hpa> = Vec::new();
        let mut reserved: Vec<AddrRange<Hpa>> = Vec::new();

        let n_ops = rng.gen_range(20usize..150);
        for _ in 0..n_ops {
            match rng.gen_range(0u32..10) {
                0..=3 => {
                    if let Ok(a) = mem.alloc(PageSize::Size4K) {
                        assert!(
                            !mem.bad_frames().is_bad(a),
                            "case {case}: handed out a bad frame"
                        );
                        live.push(a);
                    }
                }
                4 | 5 => {
                    if !live.is_empty() {
                        let i = rng.gen_range(0usize..live.len());
                        let a = live.swap_remove(i);
                        mem.free(a, PageSize::Size4K).unwrap();
                    }
                }
                6 => {
                    // Frame loss: only free frames can go bad, and a failed
                    // injection is typed, not a panic.
                    let _ = mem.inject_bad_frames(&mut rng, &span, 2);
                }
                7 => {
                    // Reservations model segment backing: pinned, so later
                    // compactions never relocate them out from under a
                    // programmed BASE/LIMIT/OFFSET.
                    if let Ok(r) = mem.reserve_contiguous(
                        rng.gen_range(PageSize::Size4K.bytes()..MIB),
                        PageSize::Size4K,
                    ) {
                        mem.set_pinned_range(&r, true).unwrap();
                        reserved.push(r);
                    }
                }
                _ => {
                    // Compaction: every relocation must move a live frame to
                    // a fresh frame — never onto another live one.
                    let mut moved = Vec::new();
                    if let Ok(out) = mem.compact_and_reserve(
                        2 * MIB,
                        PageSize::Size4K,
                        false,
                        &mut |src, dst| moved.push((src, dst)),
                    ) {
                        mem.set_pinned_range(&out.range, true).unwrap();
                        reserved.push(out.range);
                    }
                    for (src, dst) in moved {
                        let i = live
                            .iter()
                            .position(|&f| f == src)
                            .unwrap_or_else(|| panic!("case {case}: moved unknown frame"));
                        assert!(
                            !live.contains(&dst),
                            "case {case}: compaction double-mapped {dst:?}"
                        );
                        live[i] = dst;
                    }
                }
            }

            // Exact accounting: every byte is free, live, reserved, or bad.
            let live_bytes = live.len() as u64 * PageSize::Size4K.bytes();
            let reserved_bytes: u64 = reserved.iter().map(AddrRange::len).sum();
            let bad_bytes = mem.bad_frames().count() as u64 * PageSize::Size4K.bytes();
            assert_eq!(
                mem.free_bytes() + live_bytes + reserved_bytes + bad_bytes,
                total,
                "case {case}"
            );

            // No two live frames alias; none sit in a reservation.
            let mut sorted = live.clone();
            sorted.sort();
            for w in sorted.windows(2) {
                assert_ne!(w[0], w[1], "case {case}: double allocation");
            }
            for f in &live {
                for r in &reserved {
                    assert!(!r.contains(*f), "case {case}: live frame in reservation");
                }
            }
        }
    }
}

/// Compaction preserves frame contents under the relocation map.
#[test]
fn compaction_preserves_contents() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x0947_5200u64 + case);
        let occupancy = 0.05 + rng.gen_f64() * 0.35;

        let mut mem: PhysMem<Hpa> = PhysMem::new(8 * MIB);
        let held = mem.fragment(&mut rng, occupancy);
        // Stamp every held frame with a value derived from its identity.
        for (i, &f) in held.iter().enumerate() {
            mem.write_u64(f, i as u64 + 1);
        }
        let mut location: std::collections::HashMap<Hpa, Hpa> =
            held.iter().map(|&f| (f, f)).collect();

        let out = mem.compact_and_reserve(4 * MIB, PageSize::Size4K, false, &mut |src, dst| {
            // Find which logical frame currently lives at src.
            let logical = *location
                .iter()
                .find(|&(_, &cur)| cur == src)
                .expect("moved frame must be tracked")
                .0;
            location.insert(logical, dst);
        });
        if let Ok(out) = out {
            assert_eq!(out.range.len(), 4 * MIB, "case {case}");
            for (i, f) in held.iter().enumerate() {
                let cur = location[f];
                assert_eq!(mem.read_u64(cur), i as u64 + 1, "case {case}");
                assert!(!out.range.contains(cur), "case {case}");
            }
        }
    }
}
