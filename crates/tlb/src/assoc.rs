//! Generic set-associative cache with true-LRU replacement, backed by
//! fixed-geometry struct-of-arrays storage.
//!
//! The geometry (`nsets × ways`) is fixed at construction, so the cache
//! is three dense parallel arrays — keys, values, LRU stamps — each of
//! exactly `nsets × ways` slots, plus a per-set occupancy count. Set `s`
//! owns the contiguous slot range `[s·ways, (s+1)·ways)`; a lookup is a
//! masked index plus a linear scan of at most `ways` adjacent slots, and
//! never touches a hash function or chases a per-set allocation. When
//! `nsets` is a power of two (every shipped geometry) the set index is
//! `set & (nsets − 1)`; otherwise it falls back to `set % nsets` — the
//! mask would alias high sets onto low ones and leave slots unreachable,
//! see `non_pow2_set_counts_use_every_set` below.
//!
//! Replacement is true LRU via a per-cache monotonic stamp. Slot motion
//! on eviction deliberately mirrors the historical `Vec::swap_remove` +
//! `push` sequence (the last way moves into the victim's slot, the new
//! entry lands in the last slot) so that scan order, eviction choices,
//! and every derived counter are byte-identical to the pre-SoA
//! implementation — the `machine_equiv` golden fixture pins this.

use core::fmt;

/// Hit/miss counters for a cache structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Entries displaced by fills.
    pub evictions: u64,
    /// Fills performed.
    pub fills: u64,
}

impl CacheStats {
    /// Lookups that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Hit ratio in `[0, 1]`; `1.0` for an unused cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The dense backing arrays. Allocated lazily on the first insert: the
/// slots beyond a set's occupancy count are never read, but they must
/// hold *some* `K`/`V`, and the first inserted entry supplies the filler
/// without imposing a `Default` bound on callers.
struct Slots<K, V> {
    keys: Vec<K>,
    values: Vec<V>,
    stamps: Vec<u64>,
}

impl<K: Copy, V: Copy> Slots<K, V> {
    fn filled(total: usize, key: K, value: V) -> Self {
        Slots {
            keys: vec![key; total],
            values: vec![value; total],
            stamps: vec![0; total],
        }
    }
}

/// A set-associative cache mapping keys to values, with per-set true-LRU
/// replacement. The caller supplies the set index on each access, which
/// lets differently-shaped keys (guest vs. nested TLB entries) share the
/// structure the way real hardware shares it.
///
/// # Example
///
/// ```
/// use mv_tlb::AssocCache;
///
/// let mut c: AssocCache<u64, &str> = AssocCache::new(4, 2);
/// c.insert(0, 100, "a");
/// assert_eq!(c.lookup(0, &100), Some(&"a"));
/// assert_eq!(c.lookup(0, &101), None);
/// assert_eq!(c.stats().hits, 1);
/// ```
pub struct AssocCache<K, V> {
    slots: Option<Slots<K, V>>,
    /// Occupied ways per set; only slots below the count are live.
    lens: Vec<u32>,
    nsets: usize,
    ways: usize,
    /// `nsets − 1` when `nsets` is a power of two; the modulo fallback
    /// is flagged by `usize::MAX` (no valid mask, since `ways > 0`).
    set_mask: usize,
    stamp: u64,
    stats: CacheStats,
}

/// Sentinel for "no power-of-two mask, reduce by modulo".
const NO_MASK: usize = usize::MAX;

impl<K: Eq + Copy, V: Copy> AssocCache<K, V> {
    /// Creates a cache with `nsets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `nsets` or `ways` is zero.
    pub fn new(nsets: usize, ways: usize) -> Self {
        assert!(nsets > 0 && ways > 0, "cache must have sets and ways");
        Self {
            slots: None,
            lens: vec![0; nsets],
            nsets,
            ways,
            set_mask: if nsets.is_power_of_two() {
                nsets - 1
            } else {
                NO_MASK
            },
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    #[inline]
    pub fn nsets(&self) -> usize {
        self.nsets
    }

    /// Total capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nsets * self.ways
    }

    /// Counter snapshot.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Reduces a caller-supplied set index to `[0, nsets)`. Power-of-two
    /// geometries take the mask path (no integer division on the hot
    /// path); others must divide — masking a non-power-of-two count
    /// would alias onto a subset of the sets.
    #[inline(always)]
    fn set_of(&self, set: usize) -> usize {
        if self.set_mask != NO_MASK {
            set & self.set_mask
        } else {
            set % self.nsets
        }
    }

    /// Looks up `key` in set `set`, updating LRU state and counters.
    #[inline]
    pub fn lookup(&mut self, set: usize, key: &K) -> Option<&V> {
        self.stats.lookups += 1;
        self.stamp += 1;
        let si = self.set_of(set);
        let len = self.lens[si] as usize;
        let slots = match &mut self.slots {
            Some(slots) if len > 0 => slots,
            _ => return None,
        };
        let base = si * self.ways;
        let keys = &slots.keys[base..base + len];
        for (i, k) in keys.iter().enumerate() {
            if *k == *key {
                slots.stamps[base + i] = self.stamp;
                self.stats.hits += 1;
                return Some(&slots.values[base + i]);
            }
        }
        None
    }

    /// Fused lookup-then-fill for residency models: behaves exactly like
    /// `lookup(set, &key)` followed, on miss, by `insert(set, key, value)`
    /// — the counter, stamp, and slot evolution is bit-identical — but
    /// scans the set's keys once instead of twice (the insert's
    /// replace-in-place scan is provably redundant right after a missed
    /// lookup of the same key). Returns whether the key was already
    /// present.
    ///
    /// Only valid as a *fusion*: callers that do other operations on this
    /// cache between the lookup and the fill must use the separate calls.
    #[inline]
    pub fn touch_or_fill(&mut self, set: usize, key: K, value: V) -> bool {
        self.stats.lookups += 1;
        self.stamp += 1;
        let si = self.set_of(set);
        let ways = self.ways;
        let base = si * ways;
        let len = self.lens[si] as usize;
        if let Some(slots) = &mut self.slots {
            let keys = &slots.keys[base..base + len];
            for (i, k) in keys.iter().enumerate() {
                if *k == key {
                    slots.stamps[base + i] = self.stamp;
                    self.stats.hits += 1;
                    return true;
                }
            }
        }
        // Missed: the fill half, minus the redundant replace-in-place scan.
        self.stamp += 1;
        self.stats.fills += 1;
        let stamp = self.stamp;
        let total = self.nsets * ways;
        let slots = self
            .slots
            .get_or_insert_with(|| Slots::filled(total, key, value));
        let at = if len == ways {
            let mut lru = base;
            for i in base + 1..base + ways {
                if slots.stamps[i] < slots.stamps[lru] {
                    lru = i;
                }
            }
            let last = base + ways - 1;
            slots.keys[lru] = slots.keys[last];
            slots.values[lru] = slots.values[last];
            slots.stamps[lru] = slots.stamps[last];
            self.stats.evictions += 1;
            last
        } else {
            self.lens[si] += 1;
            base + len
        };
        slots.keys[at] = key;
        slots.values[at] = value;
        slots.stamps[at] = stamp;
        false
    }

    /// Checks for `key` without updating LRU or counters.
    pub fn peek(&self, set: usize, key: &K) -> Option<&V> {
        let si = self.set_of(set);
        let len = self.lens[si] as usize;
        let slots = self.slots.as_ref()?;
        let base = si * self.ways;
        (base..base + len)
            .find(|&i| slots.keys[i] == *key)
            .map(|i| &slots.values[i])
    }

    /// Inserts `key → value` into set `set`, evicting the LRU way if the
    /// set is full. An existing entry for `key` is replaced in place.
    #[inline]
    pub fn insert(&mut self, set: usize, key: K, value: V) {
        self.stamp += 1;
        self.stats.fills += 1;
        let stamp = self.stamp;
        let si = self.set_of(set);
        let ways = self.ways;
        let total = self.nsets * ways;
        let slots = self
            .slots
            .get_or_insert_with(|| Slots::filled(total, key, value));
        let base = si * ways;
        let len = self.lens[si] as usize;
        for i in base..base + len {
            if slots.keys[i] == key {
                slots.values[i] = value;
                slots.stamps[i] = stamp;
                return;
            }
        }
        let at = if len == ways {
            // Evict the LRU way, preserving the historical slot motion:
            // the last way moves down into the victim's slot and the new
            // entry takes the last slot (`swap_remove` + `push`).
            let mut lru = base;
            for i in base + 1..base + ways {
                if slots.stamps[i] < slots.stamps[lru] {
                    lru = i;
                }
            }
            let last = base + ways - 1;
            slots.keys[lru] = slots.keys[last];
            slots.values[lru] = slots.values[last];
            slots.stamps[lru] = slots.stamps[last];
            self.stats.evictions += 1;
            last
        } else {
            self.lens[si] += 1;
            base + len
        };
        slots.keys[at] = key;
        slots.values[at] = value;
        slots.stamps[at] = stamp;
    }

    /// Removes entries matching the predicate, compacting each set in
    /// place (relative order preserved, as `Vec::retain` did). Returns
    /// how many were removed.
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        let Some(slots) = &mut self.slots else {
            return 0;
        };
        let mut removed = 0;
        for si in 0..self.nsets {
            let base = si * self.ways;
            let len = self.lens[si] as usize;
            let mut write = 0;
            for read in 0..len {
                if pred(&slots.keys[base + read], &slots.values[base + read]) {
                    removed += 1;
                } else {
                    if write != read {
                        slots.keys[base + write] = slots.keys[base + read];
                        slots.values[base + write] = slots.values[base + read];
                        slots.stamps[base + write] = slots.stamps[base + read];
                    }
                    write += 1;
                }
            }
            self.lens[si] = write as u32;
        }
        removed
    }

    /// Removes every entry.
    pub fn flush(&mut self) {
        self.lens.fill(0);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lens.iter().all(|&l| l == 0)
    }
}

impl<K, V> fmt::Debug for AssocCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AssocCache")
            .field("nsets", &self.nsets)
            .field("ways", &self.ways)
            .field("live", &self.lens.iter().map(|&l| l as u64).sum::<u64>())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(2, 2);
        assert_eq!(c.lookup(0, &1), None);
        c.insert(0, 1, 10);
        assert_eq!(c.lookup(0, &1), Some(&10));
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 2, 20);
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(0, &1).is_some());
        c.insert(0, 3, 30);
        assert!(c.peek(0, &1).is_some());
        assert!(c.peek(0, &2).is_none(), "LRU way must be evicted");
        assert!(c.peek(0, &3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(0, &1), Some(&11));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(2, 1);
        c.insert(0, 1, 10);
        c.insert(1, 2, 20);
        assert_eq!(c.len(), 2);
        c.insert(0, 3, 30); // evicts only from set 0
        assert!(c.peek(1, &2).is_some());
        assert!(c.peek(0, &1).is_none());
    }

    #[test]
    fn invalidate_if_removes_matching() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(4, 2);
        for k in 0..8u64 {
            c.insert(k as usize, k, k * 10);
        }
        let removed = c.invalidate_if(|k, _| k % 2 == 0);
        assert_eq!(removed, 4);
        assert_eq!(c.len(), 4);
        assert!(c.peek(1, &1).is_some());
        assert!(c.peek(2, &2).is_none());
    }

    #[test]
    fn flush_empties_everything() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(4, 2);
        for k in 0..8u64 {
            c.insert(k as usize, k, k);
        }
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 1);
        c.insert(0, 1, 10);
        let _ = c.peek(0, &1);
        assert_eq!(c.stats().lookups, 0);
    }

    #[test]
    fn eviction_slot_motion_matches_swap_remove_push() {
        // The SoA rewrite must preserve the pre-SoA scan order exactly:
        // evicting slot `lru` moves the *last* way into it and the new
        // entry lands last. With 3 ways, fill {1,2,3}, evict LRU 1 →
        // slot order must become [3, 2, 4], observable through which
        // entry a subsequent scan replaces first... order itself is not
        // observable through the API, but eviction *choice* is: make 2
        // the LRU of {3, 2, 4} and check 2 goes next, not 3.
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 3);
        c.insert(0, 1, 10);
        c.insert(0, 2, 20);
        c.insert(0, 3, 30);
        assert!(c.lookup(0, &2).is_some());
        assert!(c.lookup(0, &3).is_some());
        c.insert(0, 4, 40); // evicts 1; 3 moves into its slot
        assert!(c.peek(0, &1).is_none());
        c.insert(0, 5, 50); // LRU of {3, 2, 4} is 2
        assert!(c.peek(0, &2).is_none());
        assert!(c.peek(0, &3).is_some());
        assert!(c.peek(0, &4).is_some());
        assert!(c.peek(0, &5).is_some());
    }

    #[test]
    fn lazy_backing_lookup_before_any_insert() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(4, 2);
        assert_eq!(c.lookup(3, &7), None);
        assert_eq!(c.peek(3, &7), None);
        assert_eq!(c.invalidate_if(|_, _| true), 0);
        assert!(c.is_empty());
        assert_eq!(c.stats().lookups, 1);
    }

    #[test]
    fn non_pow2_set_counts_use_every_set() {
        // A mask of (nsets − 1) over a non-power-of-two count would
        // alias sets {12..=15} onto {12 & 11, ...} — i.e. out of range —
        // or, masked harder, leave high sets permanently empty. The
        // modulo fallback must reach all 12 sets.
        let nsets = 12;
        let mut c: AssocCache<u64, u64> = AssocCache::new(nsets, 1);
        for s in 0..nsets as u64 {
            c.insert(s as usize, s, s);
        }
        assert_eq!(c.len(), nsets, "every set holds its own entry");
        for s in 0..nsets as u64 {
            assert_eq!(c.peek(s as usize, &s), Some(&s));
        }
        // Indices ≥ nsets wrap by modulo, exactly as before the rewrite.
        assert_eq!(c.peek(nsets + 2, &2), Some(&2));
        let mut d: AssocCache<u64, u64> = AssocCache::new(12, 2);
        d.insert(13, 99, 990);
        assert_eq!(d.peek(1, &99), Some(&990), "13 % 12 == 1");
    }

    #[test]
    fn flush_then_refill_reuses_slots() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(2, 2);
        for k in 0..4u64 {
            c.insert(k as usize, k, k);
        }
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.peek(0, &0), None, "flushed entries are dead");
        c.insert(0, 40, 400);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(0, &40), Some(&400));
        assert_eq!(c.peek(0, &2), None, "stale pre-flush keys stay dead");
    }

    /// The fused `touch_or_fill` must evolve counters, stamps, and slot
    /// contents exactly as the unfused lookup-then-insert-on-miss pair:
    /// drive both caches with the same adversarial access stream
    /// (conflicting sets, repeats, evictions) and compare every
    /// observable after every step.
    #[test]
    fn touch_or_fill_is_bit_identical_to_lookup_then_insert() {
        let mut fused: AssocCache<u64, u64> = AssocCache::new(2, 2);
        let mut plain: AssocCache<u64, u64> = AssocCache::new(2, 2);
        // Keys chosen to exercise: cold fill, repeat hit, set conflict
        // with eviction, re-touch of a survivor, refill of a victim.
        let stream = [0u64, 1, 0, 2, 4, 6, 0, 2, 4, 1, 3, 5, 7, 1, 0];
        for &k in &stream {
            let set = k as usize; // reduced by the cache itself
            let was_hit = fused.touch_or_fill(set, k, k * 10);
            let plain_hit = plain.lookup(set, &k).is_some();
            if !plain_hit {
                plain.insert(set, k, k * 10);
            }
            assert_eq!(was_hit, plain_hit, "hit/miss diverged on key {k}");
            assert_eq!(fused.stats(), plain.stats(), "counters diverged on key {k}");
            assert_eq!(fused.len(), plain.len());
            // Contents and LRU order must match: every key present in one
            // is present in the other, and the next eviction victim (the
            // observable consequence of stamp order) is the same.
            for probe in 0..8u64 {
                assert_eq!(
                    fused.peek(probe as usize, &probe).is_some(),
                    plain.peek(probe as usize, &probe).is_some(),
                    "residency of {probe} diverged after key {k}"
                );
            }
        }
        // Force one more eviction in each and compare the survivor set.
        fused.touch_or_fill(0, 100, 1);
        plain.insert(0, 100, 1);
        for probe in [0u64, 2, 4, 6, 100] {
            assert_eq!(
                fused.peek(probe as usize, &probe).is_some(),
                plain.peek(probe as usize, &probe).is_some(),
                "post-eviction residency of {probe} diverged"
            );
        }
    }
}
