//! Generic set-associative cache with true-LRU replacement.

use core::fmt;
use core::hash::Hash;

/// Hit/miss counters for a cache structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Entries displaced by fills.
    pub evictions: u64,
    /// Fills performed.
    pub fills: u64,
}

impl CacheStats {
    /// Lookups that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Hit ratio in `[0, 1]`; `1.0` for an unused cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way<K, V> {
    key: K,
    value: V,
    stamp: u64,
}

/// A set-associative cache mapping keys to values, with per-set true-LRU
/// replacement. The caller supplies the set index on each access, which
/// lets differently-shaped keys (guest vs. nested TLB entries) share the
/// structure the way real hardware shares it.
///
/// # Example
///
/// ```
/// use mv_tlb::AssocCache;
///
/// let mut c: AssocCache<u64, &str> = AssocCache::new(4, 2);
/// c.insert(0, 100, "a");
/// assert_eq!(c.lookup(0, &100), Some(&"a"));
/// assert_eq!(c.lookup(0, &101), None);
/// assert_eq!(c.stats().hits, 1);
/// ```
pub struct AssocCache<K, V> {
    sets: Vec<Vec<Way<K, V>>>,
    ways: usize,
    stamp: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Copy, V> AssocCache<K, V> {
    /// Creates a cache with `nsets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `nsets` or `ways` is zero.
    pub fn new(nsets: usize, ways: usize) -> Self {
        assert!(nsets > 0 && ways > 0, "cache must have sets and ways");
        Self {
            sets: (0..nsets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    #[inline]
    pub fn nsets(&self) -> usize {
        self.sets.len()
    }

    /// Total capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Counter snapshot.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `key` in set `set`, updating LRU state and counters.
    pub fn lookup(&mut self, set: usize, key: &K) -> Option<&V> {
        self.stats.lookups += 1;
        self.stamp += 1;
        let idx = set % self.sets.len();
        let set = &mut self.sets[idx];
        for way in set.iter_mut() {
            if way.key == *key {
                way.stamp = self.stamp;
                self.stats.hits += 1;
                return Some(&way.value);
            }
        }
        None
    }

    /// Checks for `key` without updating LRU or counters.
    pub fn peek(&self, set: usize, key: &K) -> Option<&V> {
        self.sets[set % self.sets.len()]
            .iter()
            .find(|w| w.key == *key)
            .map(|w| &w.value)
    }

    /// Inserts `key → value` into set `set`, evicting the LRU way if the
    /// set is full. An existing entry for `key` is replaced in place.
    pub fn insert(&mut self, set: usize, key: K, value: V) {
        self.stamp += 1;
        self.stats.fills += 1;
        let stamp = self.stamp;
        let nsets = self.sets.len();
        let set = &mut self.sets[set % nsets];
        if let Some(way) = set.iter_mut().find(|w| w.key == key) {
            way.value = value;
            way.stamp = stamp;
            return;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            set.swap_remove(lru);
            self.stats.evictions += 1;
        }
        set.push(Way { key, value, stamp });
    }

    /// Removes entries matching the predicate. Returns how many were
    /// removed.
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for set in &mut self.sets {
            set.retain(|w| {
                let kill = pred(&w.key, &w.value);
                removed += usize::from(kill);
                !kill
            });
        }
        removed
    }

    /// Removes every entry.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V> fmt::Debug for AssocCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AssocCache")
            .field("nsets", &self.sets.len())
            .field("ways", &self.ways)
            .field("live", &self.sets.iter().map(Vec::len).sum::<usize>())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(2, 2);
        assert_eq!(c.lookup(0, &1), None);
        c.insert(0, 1, 10);
        assert_eq!(c.lookup(0, &1), Some(&10));
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 2, 20);
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(0, &1).is_some());
        c.insert(0, 3, 30);
        assert!(c.peek(0, &1).is_some());
        assert!(c.peek(0, &2).is_none(), "LRU way must be evicted");
        assert!(c.peek(0, &3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(0, &1), Some(&11));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(2, 1);
        c.insert(0, 1, 10);
        c.insert(1, 2, 20);
        assert_eq!(c.len(), 2);
        c.insert(0, 3, 30); // evicts only from set 0
        assert!(c.peek(1, &2).is_some());
        assert!(c.peek(0, &1).is_none());
    }

    #[test]
    fn invalidate_if_removes_matching() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(4, 2);
        for k in 0..8u64 {
            c.insert(k as usize, k, k * 10);
        }
        let removed = c.invalidate_if(|k, _| k % 2 == 0);
        assert_eq!(removed, 4);
        assert_eq!(c.len(), 4);
        assert!(c.peek(1, &1).is_some());
        assert!(c.peek(2, &2).is_none());
    }

    #[test]
    fn flush_empties_everything() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(4, 2);
        for k in 0..8u64 {
            c.insert(k as usize, k, k);
        }
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut c: AssocCache<u64, u64> = AssocCache::new(1, 1);
        c.insert(0, 1, 10);
        let _ = c.peek(0, &1);
        assert_eq!(c.stats().lookups, 0);
    }
}
