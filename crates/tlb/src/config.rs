//! TLB geometry configuration.

/// Geometry of the modeled TLB hierarchy and page-walk cache.
///
/// The default, [`TlbConfig::sandy_bridge`], matches Table VI of the paper.
///
/// # Example
///
/// ```
/// use mv_tlb::TlbConfig;
///
/// let cfg = TlbConfig::sandy_bridge();
/// assert_eq!(cfg.l2_entries, 512);
/// let tiny = TlbConfig { l2_entries: 64, ..cfg };
/// assert_eq!(tiny.l2_entries, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 4 KiB-page entries.
    pub l1_4k_entries: usize,
    /// L1 4 KiB-page associativity.
    pub l1_4k_ways: usize,
    /// L1 2 MiB-page entries.
    pub l1_2m_entries: usize,
    /// L1 2 MiB-page associativity.
    pub l1_2m_ways: usize,
    /// L1 1 GiB-page entries (fully associative).
    pub l1_1g_entries: usize,
    /// Unified L2 entries (4 KiB granularity, shared with nested entries).
    pub l2_entries: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Page-walk-cache entries.
    pub pwc_entries: usize,
    /// Page-walk-cache associativity.
    pub pwc_ways: usize,
}

impl TlbConfig {
    /// The Table VI SandyBridge geometry used throughout the paper's
    /// evaluation.
    pub const fn sandy_bridge() -> Self {
        TlbConfig {
            l1_4k_entries: 64,
            l1_4k_ways: 4,
            l1_2m_entries: 32,
            l1_2m_ways: 4,
            l1_1g_entries: 4,
            l2_entries: 512,
            l2_ways: 4,
            pwc_entries: 32,
            pwc_ways: 4,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::sandy_bridge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandy_bridge_matches_table_vi() {
        let c = TlbConfig::sandy_bridge();
        assert_eq!(c.l1_4k_entries, 64);
        assert_eq!(c.l1_4k_ways, 4);
        assert_eq!(c.l1_2m_entries, 32);
        assert_eq!(c.l1_1g_entries, 4);
        assert_eq!(c.l2_entries, 512);
        assert_eq!(c.l2_ways, 4);
        assert_eq!(TlbConfig::default(), c);
    }
}
