//! Page-walk cache (paging-structure / MMU cache).
//!
//! Caches non-leaf page-table entries keyed by `(asid, level, va-prefix)`,
//! so a walker can skip the upper levels of a walk — the "translation
//! caching" of Barr et al. that the paper assumes as baseline hardware.
//! Both the guest dimension and the nested dimension of a 2D walk get their
//! own instance in the MMU model.

use crate::assoc::{AssocCache, CacheStats};
use crate::config::TlbConfig;

/// Key of a page-walk-cache entry: identifies one non-leaf entry of a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PwcKey {
    /// Address-space id.
    pub asid: u16,
    /// Level of the table *pointed to* (3 = PDPT, 2 = PD, 1 = PT).
    pub points_to_level: u8,
    /// The virtual-address prefix translated so far (va >> coverage of the
    /// pointed-to level's parent entry).
    pub va_prefix: u64,
}

/// A small cache of upper-level page-table entries.
///
/// The cached value is the physical base address of the next-level table
/// page, letting the walker resume at `points_to_level` directly.
///
/// # Example
///
/// ```
/// use mv_tlb::{PwCache, PwcKey, TlbConfig};
///
/// let mut pwc = PwCache::new(&TlbConfig::sandy_bridge());
/// let key = PwcKey { asid: 0, points_to_level: 2, va_prefix: 0x7f12 >> 2 };
/// pwc.insert(key, 0xdead_0000);
/// assert_eq!(pwc.lookup(key), Some(0xdead_0000));
/// ```
#[derive(Debug)]
pub struct PwCache {
    cache: AssocCache<PwcKey, u64>,
}

impl PwCache {
    /// Builds the cache from a geometry config.
    pub fn new(cfg: &TlbConfig) -> Self {
        PwCache {
            cache: AssocCache::new(cfg.pwc_entries / cfg.pwc_ways, cfg.pwc_ways),
        }
    }

    /// Looks up the table base for a walk prefix.
    #[inline]
    pub fn lookup(&mut self, key: PwcKey) -> Option<u64> {
        let set = (key.va_prefix ^ u64::from(key.points_to_level)) as usize;
        self.cache.lookup(set, &key).copied()
    }

    /// Caches the table base for a walk prefix.
    #[inline]
    pub fn insert(&mut self, key: PwcKey, table_base: u64) {
        let set = (key.va_prefix ^ u64::from(key.points_to_level)) as usize;
        self.cache.insert(set, key, table_base);
    }

    /// Drops every entry belonging to `asid`.
    pub fn flush_asid(&mut self, asid: u16) {
        self.cache.invalidate_if(|k, _| k.asid == asid);
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.cache.flush();
    }

    /// Structure counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut pwc = PwCache::new(&TlbConfig::sandy_bridge());
        let key = PwcKey {
            asid: 1,
            points_to_level: 3,
            va_prefix: 0x42,
        };
        assert_eq!(pwc.lookup(key), None);
        pwc.insert(key, 0x9000);
        assert_eq!(pwc.lookup(key), Some(0x9000));
    }

    #[test]
    fn levels_do_not_alias() {
        let mut pwc = PwCache::new(&TlbConfig::sandy_bridge());
        let k3 = PwcKey { asid: 0, points_to_level: 3, va_prefix: 7 };
        let k2 = PwcKey { asid: 0, points_to_level: 2, va_prefix: 7 };
        pwc.insert(k3, 0x1000);
        assert_eq!(pwc.lookup(k2), None);
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut pwc = PwCache::new(&TlbConfig::sandy_bridge());
        let ka = PwcKey { asid: 1, points_to_level: 2, va_prefix: 1 };
        let kb = PwcKey { asid: 2, points_to_level: 2, va_prefix: 1 };
        pwc.insert(ka, 0x1000);
        pwc.insert(kb, 0x2000);
        pwc.flush_asid(1);
        assert_eq!(pwc.lookup(ka), None);
        assert_eq!(pwc.lookup(kb), Some(0x2000));
    }

    #[test]
    fn capacity_is_bounded() {
        let cfg = TlbConfig::sandy_bridge();
        let mut pwc = PwCache::new(&cfg);
        for i in 0..(cfg.pwc_entries as u64 * 2) {
            pwc.insert(
                PwcKey { asid: 0, points_to_level: 2, va_prefix: i },
                i,
            );
        }
        let live = (0..(cfg.pwc_entries as u64 * 2))
            .filter(|&i| {
                pwc.lookup(PwcKey { asid: 0, points_to_level: 2, va_prefix: i })
                    .is_some()
            })
            .count();
        assert!(live <= cfg.pwc_entries);
    }
}
