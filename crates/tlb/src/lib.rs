//! TLB and page-walk-cache models.
//!
//! Geometry defaults follow Table VI of the paper (Intel SandyBridge,
//! Xeon E5-2430):
//!
//! * **L1 data TLB** — split by page size: 64-entry 4-way for 4 KiB pages,
//!   32-entry 4-way for 2 MiB, 4-entry fully-associative for 1 GiB.
//! * **L2 TLB** — 512-entry 4-way, 4 KiB entries only. Crucially, *nested*
//!   (gPA→hPA) entries share this structure with regular (gVA→hPA) entries
//!   ("EPT TLB/NTLB shares the TLB"), which is why the paper measures up to
//!   1.62× more TLB misses under virtualization: nested entries pollute the
//!   shared capacity. [`L2Tlb`] reproduces that contention.
//! * **Page-walk cache** ([`PwCache`]) — caches upper-level page-table
//!   entries so a walk can skip levels, as in translation caching
//!   (Barr et al.) and real MMU caches.
//!
//! All structures use true LRU within a set and count lookups, hits,
//! misses, and evictions.
//!
//! # Example
//!
//! ```
//! use mv_tlb::{L1Tlb, TlbConfig, TlbEntry};
//! use mv_types::{PageSize, Prot};
//!
//! let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
//! assert!(l1.lookup(0, 0x1000).is_none());
//! l1.insert(0, 0x1000, TlbEntry { page_base: 0xa000, size: PageSize::Size4K, prot: Prot::RW });
//! assert!(l1.lookup(0, 0x1fff).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assoc;
mod config;
mod l1;
mod l2;
mod pwc;

pub use assoc::{AssocCache, CacheStats};
pub use config::TlbConfig;
pub use l1::L1Tlb;
pub use l2::{L2Key, L2Tlb};
pub use pwc::{PwCache, PwcKey};

use mv_types::{PageSize, Prot};

/// A completed translation cached by a TLB: the physical page base plus the
/// mapping's size and protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Base of the physical page (raw value; which space depends on the
    /// TLB's role — hPA for virtualized L1 entries, PA for native).
    pub page_base: u64,
    /// Page size of the mapping.
    pub size: PageSize,
    /// Access protection of the mapping.
    pub prot: Prot,
}

impl TlbEntry {
    /// Translates `va` using this entry (the entry must cover `va`).
    #[inline]
    pub fn translate(&self, va: u64) -> u64 {
        self.page_base + (va & self.size.offset_mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_translation_applies_offset() {
        let e = TlbEntry {
            page_base: 0xa000,
            size: PageSize::Size4K,
            prot: Prot::RW,
        };
        assert_eq!(e.translate(0x1234), 0xa234);
        let e2m = TlbEntry {
            page_base: 0x40_0000,
            size: PageSize::Size2M,
            prot: Prot::RW,
        };
        assert_eq!(e2m.translate(0x1_2345), 0x41_2345);
    }
}
