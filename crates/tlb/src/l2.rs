//! Unified L2 TLB shared between guest and nested entries.
//!
//! Table VI notes that on the evaluation hardware the nested (gPA→hPA)
//! translations have *no separate structure* — they share the L2 TLB with
//! regular (gVA→hPA) entries. Section IX.A measures the consequence:
//! running virtualized inflates TLB misses by 1.29–1.62× because nested
//! entries consume shared capacity. This model keys both entry kinds into
//! the same sets to reproduce that contention.

use mv_types::PageSize;

use crate::assoc::{AssocCache, CacheStats};
use crate::config::TlbConfig;
use crate::TlbEntry;

/// Key of an L2 TLB entry: either a regular guest translation or a nested
/// translation, sharing one physical structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Key {
    /// Regular entry: (asid, 4 KiB virtual page number), caching gVA→hPA
    /// (virtualized) or VA→PA (native).
    Guest {
        /// Address-space id of the owning process.
        asid: u16,
        /// 4 KiB virtual page number.
        vpn: u64,
    },
    /// Nested entry: 4 KiB guest-physical frame number, caching gPA→hPA.
    Nested {
        /// 4 KiB guest-frame number.
        gfn: u64,
    },
}

impl L2Key {
    #[inline]
    fn set_index(self) -> usize {
        match self {
            L2Key::Guest { vpn, .. } => vpn as usize,
            L2Key::Nested { gfn } => gfn as usize,
        }
    }
}

/// The unified 4 KiB-granularity L2 TLB.
///
/// Only 4 KiB translations are cached (matching SandyBridge); larger pages
/// are served by the L1 arrays or the walker.
///
/// # Example
///
/// ```
/// use mv_tlb::{L2Key, L2Tlb, TlbConfig, TlbEntry};
/// use mv_types::{PageSize, Prot};
///
/// let mut l2 = L2Tlb::new(&TlbConfig::sandy_bridge());
/// let key = L2Key::Guest { asid: 0, vpn: 0x123 };
/// l2.insert(key, TlbEntry { page_base: 0x9000, size: PageSize::Size4K, prot: Prot::RW });
/// assert!(l2.lookup(key).is_some());
/// assert!(l2.lookup(L2Key::Nested { gfn: 0x123 }).is_none());
/// ```
#[derive(Debug)]
pub struct L2Tlb {
    cache: AssocCache<L2Key, TlbEntry>,
    guest_lookups: u64,
    guest_hits: u64,
    nested_lookups: u64,
    nested_hits: u64,
}

impl L2Tlb {
    /// Builds the L2 TLB from a geometry config.
    pub fn new(cfg: &TlbConfig) -> Self {
        L2Tlb {
            cache: AssocCache::new(cfg.l2_entries / cfg.l2_ways, cfg.l2_ways),
            guest_lookups: 0,
            guest_hits: 0,
            nested_lookups: 0,
            nested_hits: 0,
        }
    }

    /// Looks up an entry, counting per-kind hits.
    #[inline]
    pub fn lookup(&mut self, key: L2Key) -> Option<TlbEntry> {
        let hit = self.cache.lookup(key.set_index(), &key).copied();
        match key {
            L2Key::Guest { .. } => {
                self.guest_lookups += 1;
                self.guest_hits += u64::from(hit.is_some());
            }
            L2Key::Nested { .. } => {
                self.nested_lookups += 1;
                self.nested_hits += u64::from(hit.is_some());
            }
        }
        hit
    }

    /// Inserts a 4 KiB entry; larger page sizes are ignored (not cached at
    /// L2), matching the modeled hardware.
    pub fn insert(&mut self, key: L2Key, entry: TlbEntry) {
        if entry.size != PageSize::Size4K {
            return;
        }
        self.cache.insert(key.set_index(), key, entry);
    }

    /// Drops entries covering `va`/`asid` (guest kind only).
    pub fn invalidate_page(&mut self, asid: u16, va: u64) {
        let vpn = va >> 12;
        self.cache.invalidate_if(|k, _| {
            matches!(k, L2Key::Guest { asid: a, vpn: v } if *a == asid && *v == vpn)
        });
    }

    /// Drops the nested entry for `gfn`, if present.
    pub fn invalidate_nested(&mut self, gfn: u64) {
        self.cache
            .invalidate_if(|k, _| matches!(k, L2Key::Nested { gfn: g } if *g == gfn));
    }

    /// Drops every guest entry belonging to `asid`.
    pub fn flush_asid(&mut self, asid: u16) {
        self.cache
            .invalidate_if(|k, _| matches!(k, L2Key::Guest { asid: a, .. } if *a == asid));
    }

    /// Drops everything (guest and nested).
    pub fn flush_all(&mut self) {
        self.cache.flush();
    }

    /// Raw structure counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// `(lookups, hits)` for guest-kind entries.
    pub fn guest_stats(&self) -> (u64, u64) {
        (self.guest_lookups, self.guest_hits)
    }

    /// `(lookups, hits)` for nested-kind entries.
    pub fn nested_stats(&self) -> (u64, u64) {
        (self.nested_lookups, self.nested_hits)
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        self.guest_lookups = 0;
        self.guest_hits = 0;
        self.nested_lookups = 0;
        self.nested_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Prot;

    fn entry(base: u64) -> TlbEntry {
        TlbEntry {
            page_base: base,
            size: PageSize::Size4K,
            prot: Prot::RW,
        }
    }

    #[test]
    fn guest_and_nested_keys_do_not_alias() {
        let mut l2 = L2Tlb::new(&TlbConfig::sandy_bridge());
        l2.insert(L2Key::Guest { asid: 0, vpn: 5 }, entry(0x1000));
        assert!(l2.lookup(L2Key::Nested { gfn: 5 }).is_none());
        assert!(l2.lookup(L2Key::Guest { asid: 0, vpn: 5 }).is_some());
    }

    #[test]
    fn nested_entries_steal_shared_capacity() {
        // The §IX.A pollution effect in miniature: with a 4-way set, four
        // nested fills to the same set evict a resident guest entry.
        let cfg = TlbConfig::sandy_bridge();
        let nsets = (cfg.l2_entries / cfg.l2_ways) as u64;
        let mut l2 = L2Tlb::new(&cfg);
        l2.insert(L2Key::Guest { asid: 0, vpn: 0 }, entry(0x1000));
        for i in 0..4u64 {
            l2.insert(L2Key::Nested { gfn: i * nsets }, entry(0x2000 + i * 0x1000));
        }
        assert!(
            l2.lookup(L2Key::Guest { asid: 0, vpn: 0 }).is_none(),
            "guest entry evicted by nested fills in the shared structure"
        );
    }

    #[test]
    fn large_pages_are_not_cached_at_l2() {
        let mut l2 = L2Tlb::new(&TlbConfig::sandy_bridge());
        let key = L2Key::Guest { asid: 0, vpn: 7 };
        l2.insert(
            key,
            TlbEntry {
                page_base: 0x20_0000,
                size: PageSize::Size2M,
                prot: Prot::RW,
            },
        );
        assert!(l2.lookup(key).is_none());
    }

    #[test]
    fn per_kind_counters() {
        let mut l2 = L2Tlb::new(&TlbConfig::sandy_bridge());
        l2.insert(L2Key::Guest { asid: 0, vpn: 1 }, entry(0x1000));
        l2.insert(L2Key::Nested { gfn: 2 }, entry(0x2000));
        let _ = l2.lookup(L2Key::Guest { asid: 0, vpn: 1 });
        let _ = l2.lookup(L2Key::Nested { gfn: 2 });
        let _ = l2.lookup(L2Key::Nested { gfn: 3 });
        assert_eq!(l2.guest_stats(), (1, 1));
        assert_eq!(l2.nested_stats(), (2, 1));
    }

    #[test]
    fn targeted_invalidations() {
        let mut l2 = L2Tlb::new(&TlbConfig::sandy_bridge());
        l2.insert(L2Key::Guest { asid: 1, vpn: 0x10 }, entry(0x1000));
        l2.insert(L2Key::Guest { asid: 2, vpn: 0x10 }, entry(0x2000));
        l2.insert(L2Key::Nested { gfn: 0x10 }, entry(0x3000));
        l2.invalidate_page(1, 0x10 << 12);
        assert!(l2.lookup(L2Key::Guest { asid: 1, vpn: 0x10 }).is_none());
        assert!(l2.lookup(L2Key::Guest { asid: 2, vpn: 0x10 }).is_some());
        l2.invalidate_nested(0x10);
        assert!(l2.lookup(L2Key::Nested { gfn: 0x10 }).is_none());
        l2.flush_asid(2);
        assert!(l2.lookup(L2Key::Guest { asid: 2, vpn: 0x10 }).is_none());
    }
}
