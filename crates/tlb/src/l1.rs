//! Split L1 data TLB (per-page-size arrays).

use mv_types::PageSize;

use crate::assoc::{AssocCache, CacheStats};
use crate::config::TlbConfig;
use crate::TlbEntry;

type Key = (u16, u64); // (asid, vpn)

/// The L1 data TLB: three parallel arrays, one per page size, looked up
/// simultaneously (at most one can match, since a virtual address is mapped
/// at exactly one granularity).
///
/// # Example
///
/// ```
/// use mv_tlb::{L1Tlb, TlbConfig, TlbEntry};
/// use mv_types::{PageSize, Prot};
///
/// let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
/// l1.insert(3, 0x40_0000, TlbEntry {
///     page_base: 0x8000_0000, size: PageSize::Size2M, prot: Prot::RW,
/// });
/// let hit = l1.lookup(3, 0x40_1234).expect("covered by the 2M entry");
/// assert_eq!(hit.translate(0x40_1234), 0x8000_1234);
/// assert!(l1.lookup(4, 0x40_1234).is_none(), "other ASIDs do not hit");
/// ```
#[derive(Debug)]
pub struct L1Tlb {
    t4k: AssocCache<Key, TlbEntry>,
    t2m: AssocCache<Key, TlbEntry>,
    t1g: AssocCache<Key, TlbEntry>,
    lookups: u64,
    hits: u64,
}

impl L1Tlb {
    /// Builds the L1 TLB from a geometry config.
    pub fn new(cfg: &TlbConfig) -> Self {
        L1Tlb {
            t4k: AssocCache::new(cfg.l1_4k_entries / cfg.l1_4k_ways, cfg.l1_4k_ways),
            t2m: AssocCache::new(cfg.l1_2m_entries / cfg.l1_2m_ways, cfg.l1_2m_ways),
            t1g: AssocCache::new(1, cfg.l1_1g_entries), // fully associative
            lookups: 0,
            hits: 0,
        }
    }

    /// Looks up `va` for address-space `asid` in all three arrays.
    #[inline]
    pub fn lookup(&mut self, asid: u16, va: u64) -> Option<TlbEntry> {
        self.lookups += 1;
        let hit = self
            .probe(asid, va, PageSize::Size4K)
            .or_else(|| self.probe(asid, va, PageSize::Size2M))
            .or_else(|| self.probe(asid, va, PageSize::Size1G));
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    #[inline]
    fn probe(&mut self, asid: u16, va: u64, size: PageSize) -> Option<TlbEntry> {
        let vpn = va >> size.shift();
        let key = (asid, vpn);
        let cache = self.array_mut(size);
        let set = vpn as usize;
        cache.lookup(set, &key).copied()
    }

    /// Inserts a completed translation for `va`. The array is chosen by the
    /// entry's page size.
    #[inline]
    pub fn insert(&mut self, asid: u16, va: u64, entry: TlbEntry) {
        let vpn = va >> entry.size.shift();
        let key = (asid, vpn);
        self.array_mut(entry.size).insert(vpn as usize, key, entry);
    }

    #[inline]
    fn array_mut(&mut self, size: PageSize) -> &mut AssocCache<Key, TlbEntry> {
        match size {
            PageSize::Size4K => &mut self.t4k,
            PageSize::Size2M => &mut self.t2m,
            PageSize::Size1G => &mut self.t1g,
        }
    }

    /// Drops every entry whose page covers `va` in address space `asid`
    /// (an `invlpg`).
    pub fn invalidate_page(&mut self, asid: u16, va: u64) {
        for size in PageSize::ALL {
            let vpn = va >> size.shift();
            self.array_mut(size)
                .invalidate_if(|&(a, v), _| a == asid && v == vpn);
        }
    }

    /// Drops every entry belonging to `asid`.
    pub fn flush_asid(&mut self, asid: u16) {
        for size in PageSize::ALL {
            self.array_mut(size).invalidate_if(|&(a, _), _| a == asid);
        }
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.t4k.flush();
        self.t2m.flush();
        self.t1g.flush();
    }

    /// Combined lookup/hit counters across the three arrays.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups,
            hits: self.hits,
            evictions: self.t4k.stats().evictions
                + self.t2m.stats().evictions
                + self.t1g.stats().evictions,
            fills: self.t4k.stats().fills + self.t2m.stats().fills + self.t1g.stats().fills,
        }
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.hits = 0;
        self.t4k.reset_stats();
        self.t2m.reset_stats();
        self.t1g.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Prot;

    fn entry(base: u64, size: PageSize) -> TlbEntry {
        TlbEntry {
            page_base: base,
            size,
            prot: Prot::RW,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        assert!(l1.lookup(0, 0x1000).is_none());
        l1.insert(0, 0x1000, entry(0xa000, PageSize::Size4K));
        let hit = l1.lookup(0, 0x1234).unwrap();
        assert_eq!(hit.translate(0x1234), 0xa234);
        let s = l1.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn page_sizes_use_separate_arrays() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        l1.insert(0, 0, entry(0x10_0000_0000, PageSize::Size1G));
        l1.insert(0, 0x4000_0000, entry(0x20_0000, PageSize::Size2M));
        assert_eq!(l1.lookup(0, 0x3fff_ffff).unwrap().size, PageSize::Size1G);
        assert_eq!(l1.lookup(0, 0x4000_0001).unwrap().size, PageSize::Size2M);
    }

    #[test]
    fn capacity_matches_table_vi() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        // Fill 65 distinct 4K pages that all map to different sets/ways;
        // with 64 entries at least one of the first 65 must be evicted.
        for i in 0..65u64 {
            l1.insert(0, i << 12, entry(i << 12, PageSize::Size4K));
        }
        let survivors = (0..65u64).filter(|&i| l1.lookup(0, i << 12).is_some()).count();
        assert_eq!(survivors, 64);
    }

    #[test]
    fn one_gib_array_is_tiny() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        for i in 0..5u64 {
            l1.insert(0, i << 30, entry(i << 30, PageSize::Size1G));
        }
        let survivors = (0..5u64).filter(|&i| l1.lookup(0, i << 30).is_some()).count();
        assert_eq!(survivors, 4, "only 4 fully-associative 1G entries");
    }

    #[test]
    fn asids_are_isolated() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        l1.insert(1, 0x1000, entry(0xa000, PageSize::Size4K));
        assert!(l1.lookup(2, 0x1000).is_none());
        assert!(l1.lookup(1, 0x1000).is_some());
        l1.flush_asid(1);
        assert!(l1.lookup(1, 0x1000).is_none());
    }

    #[test]
    fn invalidate_page_hits_all_sizes() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        l1.insert(0, 0x20_0000, entry(0x100000, PageSize::Size2M));
        l1.invalidate_page(0, 0x20_1234);
        assert!(l1.lookup(0, 0x20_0000).is_none());
    }

    #[test]
    fn flush_all_clears() {
        let mut l1 = L1Tlb::new(&TlbConfig::sandy_bridge());
        l1.insert(0, 0x1000, entry(0xa000, PageSize::Size4K));
        l1.flush_all();
        assert!(l1.lookup(0, 0x1000).is_none());
    }
}
