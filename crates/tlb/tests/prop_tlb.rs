//! Property tests: the set-associative cache agrees with a reference
//! fully-mapped model plus LRU semantics.

use mv_tlb::AssocCache;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, val: u64 },
    Lookup { key: u64 },
    InvalidateOdd,
    Flush,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..64, any::<u64>()).prop_map(|(key, val)| Op::Insert { key, val }),
        4 => (0u64..64).prop_map(|key| Op::Lookup { key }),
        1 => Just(Op::InvalidateOdd),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    /// Hits always return the latest inserted value; misses never invent
    /// one; capacity per set is respected; a hit refreshes LRU rank.
    #[test]
    fn cache_agrees_with_reference(seq in proptest::collection::vec(ops(), 1..200)) {
        const SETS: usize = 4;
        const WAYS: usize = 2;
        let mut cache: AssocCache<u64, u64> = AssocCache::new(SETS, WAYS);
        // Reference: per-set vectors ordered by recency (front = MRU).
        let mut model: Vec<Vec<(u64, u64)>> = vec![Vec::new(); SETS];
        let set_of = |key: u64| (key as usize) % SETS;

        for op in seq {
            match op {
                Op::Insert { key, val } => {
                    cache.insert(set_of(key), key, val);
                    let set = &mut model[set_of(key)];
                    if let Some(pos) = set.iter().position(|&(k, _)| k == key) {
                        set.remove(pos);
                    } else if set.len() == WAYS {
                        set.pop(); // evict LRU (back)
                    }
                    set.insert(0, (key, val));
                }
                Op::Lookup { key } => {
                    let got = cache.lookup(set_of(key), &key).copied();
                    let set = &mut model[set_of(key)];
                    let expect = set.iter().position(|&(k, _)| k == key);
                    match (got, expect) {
                        (Some(v), Some(pos)) => {
                            prop_assert_eq!(v, set[pos].1, "stale value for {}", key);
                            let entry = set.remove(pos);
                            set.insert(0, entry); // refresh MRU
                        }
                        (None, None) => {}
                        (got, expect) => {
                            return Err(TestCaseError::fail(format!(
                                "presence mismatch for {key}: cache={got:?} model={expect:?}"
                            )))
                        }
                    }
                }
                Op::InvalidateOdd => {
                    cache.invalidate_if(|k, _| k % 2 == 1);
                    for set in &mut model {
                        set.retain(|&(k, _)| k % 2 == 0);
                    }
                }
                Op::Flush => {
                    cache.flush();
                    for set in &mut model {
                        set.clear();
                    }
                }
            }
            prop_assert_eq!(
                cache.len(),
                model.iter().map(Vec::len).sum::<usize>(),
                "live-entry counts diverged"
            );
        }

        // Final full agreement via peek (no LRU perturbation).
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for set in &model {
            for &(k, v) in set {
                expected.insert(k, v);
            }
        }
        for key in 0..64u64 {
            prop_assert_eq!(
                cache.peek(set_of(key), &key).copied(),
                expected.get(&key).copied(),
                "final state mismatch at {}", key
            );
        }
    }
}
