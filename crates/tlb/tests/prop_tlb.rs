//! Property tests: the set-associative cache agrees with a reference
//! fully-mapped model plus LRU semantics, under randomized op sequences
//! drawn from the workspace's internal RNG.

use mv_tlb::AssocCache;
use mv_types::rng::{Rng, StdRng};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, val: u64 },
    Lookup { key: u64 },
    InvalidateOdd,
    Flush,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..10) {
        0..=3 => Op::Insert {
            key: rng.gen_range(0u64..64),
            val: rng.next_word(),
        },
        4..=7 => Op::Lookup {
            key: rng.gen_range(0u64..64),
        },
        8 => Op::InvalidateOdd,
        _ => Op::Flush,
    }
}

/// Hits always return the latest inserted value; misses never invent
/// one; capacity per set is respected; a hit refreshes LRU rank.
#[test]
fn cache_agrees_with_reference() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x71b_000 + case);
        let n_ops = rng.gen_range(1usize..200);

        const SETS: usize = 4;
        const WAYS: usize = 2;
        let mut cache: AssocCache<u64, u64> = AssocCache::new(SETS, WAYS);
        // Reference: per-set vectors ordered by recency (front = MRU).
        let mut model: Vec<Vec<(u64, u64)>> = vec![Vec::new(); SETS];
        let set_of = |key: u64| (key as usize) % SETS;

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Insert { key, val } => {
                    cache.insert(set_of(key), key, val);
                    let set = &mut model[set_of(key)];
                    if let Some(pos) = set.iter().position(|&(k, _)| k == key) {
                        set.remove(pos);
                    } else if set.len() == WAYS {
                        set.pop(); // evict LRU (back)
                    }
                    set.insert(0, (key, val));
                }
                Op::Lookup { key } => {
                    let got = cache.lookup(set_of(key), &key).copied();
                    let set = &mut model[set_of(key)];
                    let expect = set.iter().position(|&(k, _)| k == key);
                    match (got, expect) {
                        (Some(v), Some(pos)) => {
                            assert_eq!(v, set[pos].1, "case {case}: stale value for {key}");
                            let entry = set.remove(pos);
                            set.insert(0, entry); // refresh MRU
                        }
                        (None, None) => {}
                        (got, expect) => panic!(
                            "case {case}: presence mismatch for {key}: \
                             cache={got:?} model={expect:?}"
                        ),
                    }
                }
                Op::InvalidateOdd => {
                    cache.invalidate_if(|k, _| k % 2 == 1);
                    for set in &mut model {
                        set.retain(|&(k, _)| k % 2 == 0);
                    }
                }
                Op::Flush => {
                    cache.flush();
                    for set in &mut model {
                        set.clear();
                    }
                }
            }
            assert_eq!(
                cache.len(),
                model.iter().map(Vec::len).sum::<usize>(),
                "case {case}: live-entry counts diverged"
            );
        }

        // Final full agreement via peek (no LRU perturbation).
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for set in &model {
            for &(k, v) in set {
                expected.insert(k, v);
            }
        }
        for key in 0..64u64 {
            assert_eq!(
                cache.peek(set_of(key), &key).copied(),
                expected.get(&key).copied(),
                "case {case}: final state mismatch at {key}"
            );
        }
    }
}
