//! Quickstart: run one workload under every translation mode and compare
//! address-translation overheads.
//!
//! ```text
//! cargo run --release -p mv-examples --bin quickstart
//! ```
//!
//! This is the five-minute tour of the library: a [`SimConfig`] describes a
//! workload plus an environment (native, virtualized with a page-size
//! combination, or one of the paper's proposed direct-segment modes), and
//! [`Simulation::run`] builds the whole stack — host memory, VMM, guest OS,
//! page tables, MMU — and drives the workload's reference stream through
//! it.

use mv_metrics::Table;
use mv_sim::{Env, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A memcached-like key-value workload over a 256 MiB dataset.
    let base = SimConfig {
        workload: WorkloadKind::Memcached,
        footprint: 256 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env: Env::native(),
        accesses: 400_000,
        warmup: 100_000,
        seed: 1,
    };

    let envs: Vec<(&str, Env)> = vec![
        ("native 4K paging", Env::native()),
        ("native direct segment", Env::native_direct()),
        ("virtualized, 4K nested pages", Env::base_virtualized(PageSize::Size4K)),
        ("virtualized, 2M nested pages", Env::base_virtualized(PageSize::Size2M)),
        ("VMM Direct (paper §III.B)", Env::vmm_direct()),
        ("Guest Direct (paper §III.C)", Env::guest_direct(PageSize::Size4K)),
        ("Dual Direct (paper §III.A)", Env::dual_direct()),
        ("shadow paging (paper §IX.D)", Env::Shadow { nested: PageSize::Size4K }),
    ];

    let mut t = Table::new(&[
        "environment", "config", "overhead", "cycles/miss", "walk refs", "VM exits",
    ]);
    for (name, env) in envs {
        let cfg = SimConfig { env, ..base };
        let r = Simulation::run(&cfg)?;
        t.row(&[
            name.to_string(),
            r.label.clone(),
            r.overhead_pct(),
            format!("{:.0}", r.cycles_per_miss()),
            r.counters.walk_refs().to_string(),
            r.vm_exits.to_string(),
        ]);
    }

    println!("\nmemcached (256 MiB) under every translation mode:\n");
    println!("{t}");
    println!("Things to notice (the paper's story in one table):");
    println!(" * virtualization multiplies the native overhead — the 2D walk;");
    println!(" * 2M nested pages help but do not close the gap;");
    println!(" * VMM Direct recovers near-native without guest changes;");
    println!(" * Dual Direct drives translation overhead to ~zero;");
    println!(" * shadow paging looks native per-walk but pays VM exits.");
    Ok(())
}
