//! A cloud operator's day: a big-memory key-value VM is slow under nested
//! paging, and the operator upgrades it to Dual Direct *live* — guest
//! segment first (Guest Direct), then the VMM segment (Dual Direct) — the
//! staged deployment story of Sections III–IV.
//!
//! ```text
//! cargo run --release -p mv-examples --bin bigmemory_database
//! ```
//!
//! Unlike `quickstart`, this example drives the stack by hand (no
//! [`mv_sim::Simulation`]) to show the actual API calls an integrator
//! would make: booting the guest, declaring the primary region,
//! programming segment registers, and switching MMU modes mid-run.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_metrics::Table;
use mv_types::{AddrRange, Gpa, Gva, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm};
use mv_workloads::{Workload, WorkloadKind};

const FOOTPRINT: u64 = 256 * MIB;
const WINDOW: u64 = 300_000;

/// Runs a measurement window, servicing faults, and returns the
/// translation overhead against the workload's ideal cycles.
fn measure(
    mmu: &mut Mmu,
    guest: &mut GuestOs,
    vmm: &mut Vmm,
    vm: mv_vmm::VmId,
    pid: u32,
    base: u64,
    workload: &mut dyn Workload,
) -> f64 {
    mmu.reset_counters();
    for _ in 0..WINDOW {
        let acc = workload.next_access();
        let va = Gva::new(base + acc.offset);
        loop {
            let outcome = {
                let (gpt, gmem) = guest.pt_and_mem(pid);
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                mmu.access(&ctx, pid as u16, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    guest.handle_page_fault(pid, gva).expect("arena is mapped");
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    vmm.handle_nested_fault(vm, gpa).expect("gpa in span");
                }
                Err(f) => panic!("unexpected fault: {f}"),
            }
        }
    }
    let c = mmu.counters();
    c.translation_cycles as f64 / (WINDOW as f64 * workload.cycles_per_access())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Boot: host, VM, guest OS, and the database process. -------------
    // Sized to hold both the demand-paged dataset and the boot reservation.
    let installed = 2 * FOOTPRINT + FOOTPRINT / 2 + 96 * MIB;
    let mut vmm = Vmm::new(2 * installed + 128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
    // Long-lived big-memory VMs reserve contiguous guest-physical memory
    // at startup (Section VI.A), so the segment can be created later even
    // though the dataset is demand-paged first.
    let mut guest = GuestOs::boot(GuestConfig {
        boot_reservation: FOOTPRINT,
        ..GuestConfig::small(installed)
    }).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();

    // The database declares its in-memory store as a primary region — a
    // uniformly-protected, contiguous chunk of address space.
    let base = guest.create_primary_region(pid, FOOTPRINT)?.as_u64();
    let mut workload = WorkloadKind::Memcached.build(FOOTPRINT, 7);

    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::BaseVirtualized,
        ..MmuConfig::default()
    });

    let mut t = Table::new(&["stage", "mode", "translation overhead"]);

    // --- Stage 0: stock nested paging. -----------------------------------
    // Populate the dataset (the store warms up), then measure.
    guest.populate(pid, Gva::new(base), FOOTPRINT)?;
    vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(installed)))?;
    let ovh = measure(&mut mmu, &mut guest, &mut vmm, vm, pid, base, workload.as_mut());
    t.row(&["boot: stock EPT", "Base Virtualized", &format!("{:.1}%", ovh * 100.0)]);

    // --- Stage 1: guest OS upgrade → Guest Direct. ------------------------
    // The guest kernel gets the segment patch; the VMM is untouched (it
    // keeps 4K nested pages and could still live-migrate this VM).
    let gseg = guest.setup_guest_segment(pid)?;
    mmu.set_mode(TranslationMode::GuestDirect);
    mmu.set_guest_segment(gseg);
    let ovh = measure(&mut mmu, &mut guest, &mut vmm, vm, pid, base, workload.as_mut());
    t.row(&["guest kernel patched", "Guest Direct", &format!("{:.1}%", ovh * 100.0)]);

    // --- Stage 2: VMM upgrade → Dual Direct. ------------------------------
    // The operator schedules the VMM-side change: contiguous host backing
    // for the whole guest-physical space.
    let vseg = vmm.create_vmm_segment(
        vm,
        AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
        SegmentOptions::default(),
    )?;
    mmu.set_mode(TranslationMode::DualDirect);
    mmu.set_guest_segment(gseg);
    mmu.set_vmm_segment(vseg);
    let ovh = measure(&mut mmu, &mut guest, &mut vmm, vm, pid, base, workload.as_mut());
    t.row(&["VMM segment created", "Dual Direct", &format!("{:.2}%", ovh * 100.0)]);

    println!("\nLive upgrade of a big-memory key-value VM:\n");
    println!("{t}");
    println!("Each stage is a runtime transition — no reboot, the hardware");
    println!("mode switches when the segment registers are programmed");
    println!("(Table III's deployment story).");
    Ok(())
}
