//! A host with a flaky DIMM: several physical frames have permanent hard
//! faults right in the middle of where the VMM segment must live. Without
//! the escape filter a *single* bad frame kills the whole segment
//! (Section V's motivation); with it, the faulty pages are remapped
//! through nested paging and the segment survives with negligible cost.
//!
//! ```text
//! cargo run --release -p mv-examples --bin faulty_dimm
//! ```

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm, VmmError};
use mv_workloads::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let footprint = 128 * MIB;
    let installed = footprint + footprint / 2 + 96 * MIB;
    let mut vmm = Vmm::new(2 * installed + 128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(installed)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = guest.create_primary_region(pid, footprint)?.as_u64();

    // The flaky DIMM: 12 dead frames spread across the whole module, so
    // no window large enough for the segment is entirely clean.
    let host_bytes = vmm.hmem().size_bytes();
    let mut bad = Vec::new();
    for i in 0..12u64 {
        let addr = Hpa::new((8 * MIB + i * (host_bytes - 16 * MIB) / 12) & !0xfff);
        vmm.hmem_mut().mark_bad(addr)?;
        bad.push(addr);
    }
    println!("hard faults at {} host frames, e.g. {:?}\n", bad.len(), &bad[..3]);

    // Without tolerance, no contiguous window exists.
    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(installed));
    match vmm.create_vmm_segment(vm, cover, SegmentOptions::default()) {
        Err(VmmError::HostFragmented { largest_run, .. }) => println!(
            "without the escape filter: segment impossible (largest clean run {} MiB)",
            largest_run / MIB
        ),
        other => panic!("expected failure, got {other:?}"),
    }

    // With the escape filter: bad frames are remapped to spares through
    // nested paging, filter false positives are pre-mapped, and the
    // segment covers the whole guest-physical space anyway.
    let vseg = vmm.create_vmm_segment(
        vm,
        cover,
        SegmentOptions {
            allow_bad: true,
            escape_seed: 99,
            ..SegmentOptions::default()
        },
    )?;
    let filter = vmm.vm(vm).escape_filter().expect("faults force a filter").clone();
    println!(
        "with the escape filter: segment {vseg:?} created;\n  filter holds {} pages, fill {:.1}%, expected fp rate {:.4}%\n",
        filter.inserted(),
        filter.fill_ratio() * 100.0,
        filter.expected_false_positive_rate() * 100.0
    );

    // Run the database in Dual Direct with the filter active and count how
    // many translations actually escape to paging.
    let gseg = guest.setup_guest_segment(pid)?;
    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    mmu.set_guest_segment(gseg);
    mmu.set_vmm_segment(vseg);
    mmu.set_vmm_escape_filter(Some(filter));

    let mut w = WorkloadKind::Memcached.build(footprint, 3);
    let accesses = 400_000u64;
    for _ in 0..accesses {
        let acc = w.next_access();
        let va = Gva::new(base + acc.offset);
        loop {
            let outcome = {
                let (gpt, gmem) = guest.pt_and_mem(pid);
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                mmu.access(&ctx, pid as u16, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    guest.handle_page_fault(pid, gva)?;
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    vmm.handle_nested_fault(vm, gpa)?;
                }
                Err(f) => panic!("unexpected fault: {f}"),
            }
        }
    }
    let c = mmu.counters();
    println!("ran {} accesses in Dual Direct over the damaged segment:", accesses);
    println!("  0D bypasses:        {}", c.cat_both);
    println!("  escaped-to-paging:  {} ({:.4}% of misses)",
        c.escape_hits,
        100.0 * c.escape_hits as f64 / c.l1_misses.max(1) as f64);
    println!("  translation cycles: {} ({:.4} per access)",
        c.translation_cycles,
        c.translation_cycles as f64 / accesses as f64);
    println!("\nThe segment keeps ~all of its benefit despite the dead frames");
    println!("(the paper's Figure 13: under 0.06% slowdown at 16 faults).");
    Ok(())
}
