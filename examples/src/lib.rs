//! Shared nothing: the examples are standalone binaries; this library
//! target exists only so the package has a stable build unit.
