//! A long-running cloud host: both guest-physical and host-physical memory
//! are badly fragmented, yet the system still reaches Dual Direct by
//! combining **self-ballooning** (Section IV, guest side) with **memory
//! compaction** (Section IV, host side) — the bottom row of Table III.
//!
//! ```text
//! cargo run --release -p mv-examples --bin fragmented_cloud_host
//! ```

use mv_guestos::{GuestConfig, GuestOs, OsError, PageSizePolicy};
use mv_types::{AddrRange, Gpa, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm, VmmError};
use mv_types::rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let footprint = 64 * MIB;
    let installed = 160 * MIB;

    let mut vmm = Vmm::new(512 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed + 128 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig {
        installed_bytes: installed,
        hotplug_capacity: 128 * MIB, // pre-provisioned for self-ballooning
        model_io_gap: false,
        boot_reservation: 0,
    }).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    guest.create_primary_region(pid, footprint)?;

    // Months of uptime: other tenants fragmented the host, and the guest's
    // own allocator fragmented guest-physical memory.
    let mut rng = StdRng::seed_from_u64(2026);
    let host_tenants = vmm.hmem_mut().fragment(&mut rng, 0.30);
    let guest_junk = guest.mem_mut().fragment(&mut rng, 0.50);
    println!("host:  {} tenant pages scattered; largest free run {} MiB",
        host_tenants.len(),
        vmm.hmem().stats().largest_free_run_bytes / MIB);
    println!("guest: {} junk pages scattered; largest free run {} MiB\n",
        guest_junk.len(),
        guest.mem().stats().largest_free_run_bytes / MIB);

    // Step 1 — the guest tries to create its segment and fails.
    match guest.setup_guest_segment(pid) {
        Err(OsError::Fragmented { requested, largest_run }) => {
            println!(
                "guest segment blocked: need {} MiB contiguous, have {} MiB",
                requested / MIB,
                largest_run / MIB
            );
        }
        other => panic!("expected fragmentation, got {other:?}"),
    }

    // Step 2 — self-ballooning: the balloon driver surrenders fragmented
    // frames; the VMM reclaims their backing and hot-adds the same amount
    // of *contiguous* guest-physical memory.
    let added = vmm.self_balloon(vm, &mut guest, footprint)?;
    println!(
        "self-balloon: {} MiB of fragmented memory traded for contiguous {added:?}",
        footprint / MIB
    );
    let gseg = guest.setup_guest_segment(pid)?;
    println!("guest segment established: {:?}  →  Guest Direct mode\n", gseg);

    // Step 3 — the VMM segment fails on the fragmented host...
    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(guest.mem().size_bytes()));
    match vmm.create_vmm_segment(vm, cover, SegmentOptions::default()) {
        Err(VmmError::HostFragmented { requested, largest_run }) => {
            println!(
                "VMM segment blocked: need {} MiB contiguous host memory, have {} MiB",
                requested / MIB,
                largest_run / MIB
            );
        }
        other => panic!("expected host fragmentation, got {other:?}"),
    }

    // Step 4 — ...so the compaction daemon relocates movable pages.
    let vseg = vmm.create_vmm_segment(
        vm,
        cover,
        SegmentOptions {
            compact: true,
            ..SegmentOptions::default()
        },
    )?;
    let moved = vmm.hmem().stats().pages_moved_by_compaction;
    println!("compaction moved {moved} pages to clear a window");
    println!("VMM segment established: {vseg:?}  →  Dual Direct mode");
    println!("\n(Table III, bottom row: Guest Direct with self-balloon support,");
    println!(" slowly converted to Dual Direct with host memory compaction.)");
    Ok(())
}
