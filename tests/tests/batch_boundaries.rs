//! Differential proof of the batched driver's boundary invariants.
//!
//! The driver services accesses in batches, re-checking the warmup
//! boundary and the churn schedule only at batch heads (see
//! `batch_end` in `mv-sim`); `Simulation::run_reference_paced` forces
//! the pre-batching access-at-a-time pacing through the *same* loop.
//! For configurations engineered so that churn events, chaos
//! injections, and telemetry epoch snapshots land exactly on batch
//! boundaries — and mid-batch, and on the warmup boundary itself — the
//! two pacings must produce byte-identical results: the same CSV row
//! and the same telemetry JSONL export, event for event.

use mv_chaos::ChaosSpec;
use mv_core::MmuConfig;
use mv_obs::TelemetryConfig;
use mv_sim::{SimConfig, Simulation};
use mv_types::MIB;
use mv_workloads::WorkloadKind;

use mv_bench::experiments::env_catalog::{NATIVE_4K, SHADOW_4K, VIRT_4K_4K};

/// Memcached's churn schedule is 45 000 events per million accesses —
/// an interval of 22 — so warmups and epoch lengths chosen as multiples
/// of 22 put churn events exactly on the boundaries under test.
const CHURN_INTERVAL: u64 = 22;

fn cfg(
    workload: WorkloadKind,
    (paging, env): (mv_sim::GuestPaging, mv_sim::Env),
    accesses: u64,
    warmup: u64,
) -> SimConfig {
    SimConfig {
        workload,
        footprint: 24 * MIB,
        guest_paging: paging,
        env,
        accesses,
        warmup,
        seed: 42,
    }
}

/// Everything observable about one run as a byte string.
fn fingerprint(
    cfg: &SimConfig,
    telemetry: TelemetryConfig,
    chaos: Option<ChaosSpec>,
    batched: bool,
) -> Vec<u8> {
    let hw = MmuConfig::default();
    let r = if batched {
        match chaos {
            Some(spec) => Simulation::run_chaos(cfg, hw, Some(telemetry), spec),
            None => Simulation::run_observed(cfg, hw, telemetry),
        }
    } else {
        Simulation::run_reference_paced(cfg, hw, Some(telemetry), chaos)
    }
    .expect("run completes");
    let mut out = Vec::new();
    out.extend_from_slice(r.csv_row().as_bytes());
    out.push(b'\n');
    r.telemetry
        .as_ref()
        .expect("run is observed")
        .write_jsonl(&mut out)
        .expect("telemetry serializes");
    if let Some(report) = &r.chaos {
        out.extend_from_slice(format!("{report:?}").as_bytes());
    }
    out
}

fn assert_pacing_equivalent(
    label: &str,
    cfg: &SimConfig,
    telemetry: TelemetryConfig,
    chaos: Option<ChaosSpec>,
) {
    let batched = fingerprint(cfg, telemetry, chaos, true);
    let reference = fingerprint(cfg, telemetry, chaos, false);
    assert!(
        batched == reference,
        "{label}: batched and access-at-a-time pacing diverged \
         (batched {} bytes, reference {} bytes)",
        batched.len(),
        reference.len()
    );
}

#[test]
fn churn_heavy_run_with_events_on_batch_boundaries() {
    // Warmup is a churn multiple, so a churn event is due exactly at the
    // warmup boundary (the driver must fire it *after* the counter
    // reset, inside the measured window); the epoch length is a churn
    // multiple too, so epoch snapshots coincide with batch heads.
    let c = cfg(
        WorkloadKind::Memcached,
        VIRT_4K_4K,
        100 * CHURN_INTERVAL,
        100 * CHURN_INTERVAL,
    );
    let t = TelemetryConfig {
        epoch_len: 10 * CHURN_INTERVAL,
        flight_capacity: 4,
    };
    assert_pacing_equivalent("churn-on-boundary", &c, t, None);
}

#[test]
fn churn_events_landing_mid_epoch_and_mid_warmup() {
    // Nothing aligns: warmup and epoch length are coprime to the churn
    // interval, so every event lands mid-batch somewhere.
    let c = cfg(WorkloadKind::Memcached, VIRT_4K_4K, 2_001, 777);
    let t = TelemetryConfig {
        epoch_len: 500,
        flight_capacity: 2,
    };
    assert_pacing_equivalent("churn-mid-batch", &c, t, None);
}

#[test]
fn zero_warmup_boundary_at_access_zero() {
    // The warmup boundary degenerates onto access 0, where the batched
    // loop's boundary block and the first batch head coincide.
    let c = cfg(WorkloadKind::Memcached, SHADOW_4K, 1_100, 0);
    let t = TelemetryConfig {
        epoch_len: CHURN_INTERVAL,
        flight_capacity: 0,
    };
    assert_pacing_equivalent("zero-warmup", &c, t, None);
}

#[test]
fn churn_free_run_is_two_whole_batches() {
    // Gups never churns: the batched driver takes exactly two batches
    // (boot→warmup, warmup→end) while the reference paces one by one.
    let c = cfg(WorkloadKind::Gups, NATIVE_4K, 3_000, 1_000);
    let t = TelemetryConfig {
        epoch_len: 750,
        flight_capacity: 8,
    };
    assert_pacing_equivalent("churn-free", &c, t, None);
}

#[test]
fn chaos_injections_pin_batches_to_single_accesses() {
    // An active chaos spec must force per-access pacing in the batched
    // driver (injection and the oracle hook around every access), so
    // both pacings take the identical path — including when injections
    // coincide with churn indices (fault interval 44 = 2 × churn 22).
    let c = cfg(
        WorkloadKind::Memcached,
        VIRT_4K_4K,
        50 * CHURN_INTERVAL,
        10 * CHURN_INTERVAL,
    );
    let t = TelemetryConfig {
        epoch_len: 5 * CHURN_INTERVAL,
        flight_capacity: 2,
    };
    let spec = ChaosSpec::new(7, 1_000_000 / 44);
    assert_pacing_equivalent("chaos-per-access", &c, t, Some(spec));
}
