//! Regression: a Direct-segment run survives injected segment-allocation
//! failures by degrading to paging and recovering, with the translation
//! oracle cross-checking every completed access along the way.
//!
//! This is the end-to-end acceptance test for the chaos layer: fault
//! injection must *degrade* the run (never fail it), every transition must
//! land in the telemetry export, and the oracle must stay silent — the
//! MMU's answers remain correct through nullified segments, escape-heavy
//! filters, and recovery.

use mv_chaos::{ChaosSpec, DegradeLevel};
use mv_core::MmuConfig;
use mv_obs::TelemetryConfig;
use mv_sim::{Env, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

/// High enough that segment-allocation failures land several times inside
/// the window (rate/5 kinds) and occasionally twice within one backoff
/// window (escalating all the way to paging), low enough that balloon
/// denials leave recovery windows open — under denial saturation the run
/// (correctly) never recovers.
const FAULT_RATE: u64 = 50_000;

fn cfg(env: Env) -> SimConfig {
    SimConfig {
        workload: WorkloadKind::Gups,
        footprint: 16 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: 10_000,
        warmup: 1_000,
        seed: 7,
    }
}

fn chaos() -> ChaosSpec {
    ChaosSpec::new(0xc4a05, FAULT_RATE)
}

#[test]
fn native_direct_survives_segment_loss_oracle_clean() {
    let tcfg = TelemetryConfig {
        epoch_len: 2_000,
        flight_capacity: 0,
    };
    let result = Simulation::run_chaos(
        &cfg(Env::native_direct()),
        MmuConfig::default(),
        Some(tcfg),
        chaos(),
    )
    .expect("chaos must degrade the run, not fail it");

    let report = result.chaos.expect("chaos report is populated");
    assert!(report.survived(), "zero oracle violations expected");
    assert_eq!(report.oracle_violations, 0);
    assert!(
        report.oracle_checks > 0,
        "the oracle must check completed accesses"
    );
    assert!(
        report.injected_total() > 0,
        "the fault plan must actually fire at this rate"
    );

    // The run degraded off Direct at least once and came back.
    assert!(
        report.residency[DegradeLevel::Paging.index()] > 0
            || report.residency[DegradeLevel::EscapeHeavy.index()] > 0,
        "segment-alloc failures must push the run off Direct"
    );
    assert!(report.recoveries > 0, "backoff retry must restore Direct");
    assert!(report.residency[DegradeLevel::Direct.index()] > 0);

    // Transitions reach the telemetry export as dedicated records.
    let telemetry = result.telemetry.expect("telemetry attached");
    let transitions = telemetry.transitions();
    assert_eq!(report.transitions, transitions.len() as u64);
    assert!(
        transitions.iter().any(|t| t.to == "paging"),
        "a Direct→paging degradation must be recorded"
    );
    assert!(
        transitions
            .iter()
            .any(|t| t.to == "direct" && t.cause == "recovery"),
        "a recovery back to Direct must be recorded"
    );
    let mut jsonl = Vec::new();
    telemetry.write_jsonl(&mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    assert!(
        jsonl.contains("\"type\":\"transition\""),
        "transition lines must ride in the JSONL export"
    );
}

/// The same chaos plan over every segment-bearing virtualized mode: the
/// stack must stay oracle-clean while degrading whichever dimension the
/// mode runs direct.
#[test]
fn virtualized_direct_modes_stay_oracle_clean_under_chaos() {
    for env in [
        Env::vmm_direct(),
        Env::guest_direct(PageSize::Size4K),
        Env::dual_direct(),
    ] {
        let result = Simulation::run_chaos(&cfg(env), MmuConfig::default(), None, chaos())
            .unwrap_or_else(|e| panic!("{env:?} must survive chaos: {e}"));
        let report = result.chaos.expect("chaos report is populated");
        assert!(report.survived(), "{env:?}: oracle violations");
        assert!(report.oracle_checks > 0, "{env:?}");
        assert!(report.injected_total() > 0, "{env:?}");
    }
}

/// The 3-deep L2 stack under the same chaos plan: segment-allocation
/// failures must walk all three direct segments down the ladder (each
/// layer's MMU copy nullified, the authoritative structures intact) and
/// the recovery path must re-program all three — oracle-clean throughout.
#[test]
fn l2_triple_direct_survives_per_layer_segment_loss_oracle_clean() {
    for env in [Env::l2(true, true, true), Env::l2(false, true, true)] {
        let result = Simulation::run_chaos(&cfg(env), MmuConfig::default(), None, chaos())
            .unwrap_or_else(|e| panic!("{env:?} must survive chaos: {e}"));
        let report = result.chaos.expect("chaos report is populated");
        assert!(report.survived(), "{env:?}: oracle violations");
        assert!(report.oracle_checks > 0, "{env:?}");
        assert!(
            report.residency[DegradeLevel::Paging.index()] > 0
                || report.residency[DegradeLevel::EscapeHeavy.index()] > 0,
            "{env:?}: segment loss must push the stack off Direct"
        );
        assert!(
            report.recoveries > 0,
            "{env:?}: recovery must re-program every degraded layer"
        );
    }
}

/// Chaos with the same seed is deterministic: two runs of the same cell
/// produce identical reports and identical transition streams.
#[test]
fn chaos_runs_are_deterministic() {
    let c = cfg(Env::native_direct());
    let a = Simulation::run_chaos(&c, MmuConfig::default(), None, chaos()).unwrap();
    let b = Simulation::run_chaos(&c, MmuConfig::default(), None, chaos()).unwrap();
    assert_eq!(a.chaos, b.chaos);
    assert_eq!(a.csv_row(), b.csv_row());
}
