//! Determinism contract of the parallel experiment engine.
//!
//! `mv-par` promises that a grid's results — per-cell counters, merged
//! telemetry, CSV rows, everything — are byte-identical for any worker
//! count and any completion order. These tests run the same grid at
//! jobs = 1, 2, and 8 and diff the outputs, plus the failure-containment
//! and degenerate-grid edge cases.

use std::num::NonZeroUsize;

use mv_obs::TelemetryConfig;
use mv_sim::{Env, GridCell, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn jobs(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn base_cfg(workload: WorkloadKind, env: Env) -> SimConfig {
    SimConfig {
        workload,
        footprint: 24 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: 20_000,
        warmup: 5_000,
        seed: 42,
    }
}

/// A small but heterogeneous grid: two workloads × two environments ×
/// three trials, all observed, so the merge path (counters + histograms +
/// epochs) is exercised end to end.
fn grid() -> Vec<GridCell> {
    let tcfg = TelemetryConfig {
        epoch_len: 4_000,
        flight_capacity: 0,
    };
    let mut cells = Vec::new();
    for workload in [WorkloadKind::Gups, WorkloadKind::Graph500] {
        for env in [Env::base_virtualized(PageSize::Size4K), Env::dual_direct()] {
            for trial in 0..3 {
                cells.push(GridCell::new(base_cfg(workload, env)).trial(trial).observed(tcfg));
            }
        }
    }
    cells
}

/// Renders everything observable about a grid run into one byte string:
/// per-cell CSV rows in cell order, the merged reduction's CSV row, and
/// the merged telemetry's full JSONL export.
fn fingerprint(cells: &[GridCell], workers: usize) -> Vec<u8> {
    let report = Simulation::run_grid(cells, jobs(workers));
    assert_eq!(report.len(), cells.len());
    assert_eq!(report.failures().count(), 0, "grid cells are all valid");

    let mut out = Vec::new();
    for r in report.results() {
        out.extend_from_slice(r.csv_row().as_bytes());
        out.push(b'\n');
    }
    let merged = report.merged().expect("non-empty grid");
    out.extend_from_slice(merged.csv_row().as_bytes());
    out.push(b'\n');
    merged
        .telemetry
        .as_ref()
        .expect("observed cells merge telemetry")
        .write_jsonl(&mut out)
        .expect("telemetry serializes");
    out
}

#[test]
fn grid_output_is_byte_identical_across_worker_counts() {
    let cells = grid();
    let serial = fingerprint(&cells, 1);
    assert!(!serial.is_empty());
    for workers in [2, 8] {
        let parallel = fingerprint(&cells, workers);
        assert_eq!(
            serial, parallel,
            "jobs=1 and jobs={workers} must emit identical rows and telemetry"
        );
    }
}

#[test]
fn trials_are_distinct_but_reproducible() {
    let cells = grid();
    // Trials of the same configuration have split seeds: their rows differ.
    let report = Simulation::run_grid(&cells[..3], jobs(2));
    let rows: Vec<String> = report.results().map(|r| r.csv_row()).collect();
    assert_eq!(rows.len(), 3);
    assert_ne!(rows[0], rows[1]);
    assert_ne!(rows[1], rows[2]);
    // But each trial is a pure function of its coordinates: re-running
    // the same cells reproduces the same rows.
    let again = Simulation::run_grid(&cells[..3], jobs(3));
    let rows2: Vec<String> = again.results().map(|r| r.csv_row()).collect();
    assert_eq!(rows, rows2);
}

#[test]
fn panic_in_one_job_does_not_abort_the_grid() {
    // Silence the default panic-hook backtrace for the intentional panic;
    // the pool's catch_unwind still captures the payload.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let items: Vec<u32> = (0..16).collect();
    let results = mv_par::par_map(jobs(4), &items, |_, &x| {
        if x == 7 {
            panic!("cell {x} is poisoned");
        }
        x * 2
    });
    std::panic::set_hook(prev);

    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            let p = r.as_ref().expect_err("job 7 panicked");
            assert_eq!(p.index, 7);
            assert!(p.message.contains("poisoned"), "payload: {}", p.message);
        } else {
            assert_eq!(*r.as_ref().expect("other jobs unaffected"), i as u32 * 2);
        }
    }
}

/// Property: the pool's output is byte-identical to the serial reference
/// for any worker count under *randomized steal schedules*. Job costs are
/// drawn pseudo-randomly per round, so which worker steals which job from
/// whom differs between rounds and worker counts — while the result
/// vector, being written back by item index, must never change.
#[test]
fn work_stealing_output_matches_serial_for_any_schedule() {
    use mv_types::rng::split_seed;
    use std::time::Duration;

    let items: Vec<u64> = (0..40).collect();
    let value = |i: usize, x: u64| split_seed(x ^ 0xa5a5, i as u64);
    let reference: Vec<u64> = mv_par::par_map(jobs(1), &items, |i, &x| value(i, x))
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    for round in 0..3u64 {
        for workers in [2, 3, 5, 8] {
            let out: Vec<u64> = mv_par::par_map(jobs(workers), &items, |i, &x| {
                // A pseudo-random 0–2ms stall per job perturbs the steal
                // interleaving without touching the computed value.
                let stall = split_seed(round, i as u64) % 3;
                std::thread::sleep(Duration::from_millis(stall));
                value(i, x)
            })
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
            assert_eq!(
                out, reference,
                "jobs={workers} round={round} must match the serial reference"
            );
        }
    }
}

/// Starvation resistance: one job costing ~100x the rest must not idle
/// the pool. The straggler's owner gets stuck on it, and the other
/// workers — after draining their own blocks — steal the rest of the
/// straggler's block out from under it, so every job still runs and the
/// owner ends the sweep having executed almost nothing else.
#[test]
fn one_expensive_cell_does_not_starve_the_pool() {
    use std::time::Duration;

    let items: Vec<u64> = (0..16).collect();
    // Job 0 lands at the head of worker 0's initial block [0, 4).
    let (results, stats) = mv_par::par_map_with_stats(jobs(4), &items, |i, &x| {
        let cost = if i == 0 { 200 } else { 2 };
        std::thread::sleep(Duration::from_millis(cost));
        x * 2
    });
    for (i, r) in results.iter().enumerate() {
        assert_eq!(*r.as_ref().expect("no panics"), i as u64 * 2);
    }
    assert_eq!(stats.executed.len(), 4);
    assert_eq!(
        stats.executed.iter().sum::<u64>(),
        16,
        "every job executed exactly once: {:?}",
        stats.executed
    );
    // The other three workers drained their blocks (12 jobs, ~8ms of
    // work) two orders of magnitude before worker 0 finished its
    // straggler, so jobs 1–3 were stolen from worker 0's block.
    assert!(
        stats.total_steals() >= 3,
        "the straggler's block must be stolen from: {:?}",
        stats.steals
    );
    assert_eq!(
        stats.executed[0], 1,
        "the straggler's owner should execute only the straggler: {:?}",
        stats.executed
    );
}

#[test]
fn empty_grid_is_a_clean_no_op() {
    for workers in [1, 8] {
        let report = Simulation::run_grid(&[], jobs(workers));
        assert!(report.is_empty());
        assert!(report.merged().is_none());
        assert_eq!(report.outcomes().len(), 0);
    }
}

#[test]
fn single_cell_grid_matches_the_direct_api() {
    let cfg = base_cfg(WorkloadKind::Gups, Env::vmm_direct());
    let cell = GridCell::new(cfg);
    for workers in [1, 8] {
        let report = Simulation::run_grid(std::slice::from_ref(&cell), jobs(workers));
        assert_eq!(report.len(), 1);
        let merged = report.merged().expect("cell succeeded");
        let direct = Simulation::run(&cfg).unwrap();
        assert_eq!(merged.counters, direct.counters);
        assert_eq!(merged.csv_row(), direct.csv_row());
    }
}
