//! Determinism contract of the parallel experiment engine.
//!
//! `mv-par` promises that a grid's results — per-cell counters, merged
//! telemetry, CSV rows, everything — are byte-identical for any worker
//! count and any completion order. These tests run the same grid at
//! jobs = 1, 2, and 8 and diff the outputs, plus the failure-containment
//! and degenerate-grid edge cases.

use std::num::NonZeroUsize;

use mv_obs::TelemetryConfig;
use mv_sim::{Env, GridCell, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn jobs(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn base_cfg(workload: WorkloadKind, env: Env) -> SimConfig {
    SimConfig {
        workload,
        footprint: 24 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: 20_000,
        warmup: 5_000,
        seed: 42,
    }
}

/// A small but heterogeneous grid: two workloads × two environments ×
/// three trials, all observed, so the merge path (counters + histograms +
/// epochs) is exercised end to end.
fn grid() -> Vec<GridCell> {
    let tcfg = TelemetryConfig {
        epoch_len: 4_000,
        flight_capacity: 0,
    };
    let mut cells = Vec::new();
    for workload in [WorkloadKind::Gups, WorkloadKind::Graph500] {
        for env in [Env::base_virtualized(PageSize::Size4K), Env::dual_direct()] {
            for trial in 0..3 {
                cells.push(GridCell::new(base_cfg(workload, env)).trial(trial).observed(tcfg));
            }
        }
    }
    cells
}

/// Renders everything observable about a grid run into one byte string:
/// per-cell CSV rows in cell order, the merged reduction's CSV row, and
/// the merged telemetry's full JSONL export.
fn fingerprint(cells: &[GridCell], workers: usize) -> Vec<u8> {
    let report = Simulation::run_grid(cells, jobs(workers));
    assert_eq!(report.len(), cells.len());
    assert_eq!(report.failures().count(), 0, "grid cells are all valid");

    let mut out = Vec::new();
    for r in report.results() {
        out.extend_from_slice(r.csv_row().as_bytes());
        out.push(b'\n');
    }
    let merged = report.merged().expect("non-empty grid");
    out.extend_from_slice(merged.csv_row().as_bytes());
    out.push(b'\n');
    merged
        .telemetry
        .as_ref()
        .expect("observed cells merge telemetry")
        .write_jsonl(&mut out)
        .expect("telemetry serializes");
    out
}

#[test]
fn grid_output_is_byte_identical_across_worker_counts() {
    let cells = grid();
    let serial = fingerprint(&cells, 1);
    assert!(!serial.is_empty());
    for workers in [2, 8] {
        let parallel = fingerprint(&cells, workers);
        assert_eq!(
            serial, parallel,
            "jobs=1 and jobs={workers} must emit identical rows and telemetry"
        );
    }
}

#[test]
fn trials_are_distinct_but_reproducible() {
    let cells = grid();
    // Trials of the same configuration have split seeds: their rows differ.
    let report = Simulation::run_grid(&cells[..3], jobs(2));
    let rows: Vec<String> = report.results().map(|r| r.csv_row()).collect();
    assert_eq!(rows.len(), 3);
    assert_ne!(rows[0], rows[1]);
    assert_ne!(rows[1], rows[2]);
    // But each trial is a pure function of its coordinates: re-running
    // the same cells reproduces the same rows.
    let again = Simulation::run_grid(&cells[..3], jobs(3));
    let rows2: Vec<String> = again.results().map(|r| r.csv_row()).collect();
    assert_eq!(rows, rows2);
}

#[test]
fn panic_in_one_job_does_not_abort_the_grid() {
    // Silence the default panic-hook backtrace for the intentional panic;
    // the pool's catch_unwind still captures the payload.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let items: Vec<u32> = (0..16).collect();
    let results = mv_par::par_map(jobs(4), &items, |_, &x| {
        if x == 7 {
            panic!("cell {x} is poisoned");
        }
        x * 2
    });
    std::panic::set_hook(prev);

    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            let p = r.as_ref().expect_err("job 7 panicked");
            assert_eq!(p.index, 7);
            assert!(p.message.contains("poisoned"), "payload: {}", p.message);
        } else {
            assert_eq!(*r.as_ref().expect("other jobs unaffected"), i as u32 * 2);
        }
    }
}

#[test]
fn empty_grid_is_a_clean_no_op() {
    for workers in [1, 8] {
        let report = Simulation::run_grid(&[], jobs(workers));
        assert!(report.is_empty());
        assert!(report.merged().is_none());
        assert_eq!(report.outcomes().len(), 0);
    }
}

#[test]
fn single_cell_grid_matches_the_direct_api() {
    let cfg = base_cfg(WorkloadKind::Gups, Env::vmm_direct());
    let cell = GridCell::new(cfg);
    for workers in [1, 8] {
        let report = Simulation::run_grid(std::slice::from_ref(&cell), jobs(workers));
        assert_eq!(report.len(), 1);
        let merged = report.merged().expect("cell succeeded");
        let direct = Simulation::run(&cfg).unwrap();
        assert_eq!(merged.counters, direct.counters);
        assert_eq!(merged.csv_row(), direct.csv_row());
    }
}
