//! Observer non-perturbation and telemetry-consistency integration tests.
//!
//! The whole point of `mv-obs` is that attaching a [`mv_obs::WalkObserver`]
//! is *measurement*, not *intervention*: an observed run must produce
//! byte-for-byte the same counters, overhead, and derived metrics as the
//! identical unobserved run, and the telemetry it yields must agree with
//! those counters. The attribution profiler (`mv-prof`) rides the same
//! hook and inherits the same contract, plus a stronger one: every cycle
//! the walker charges must land in exactly one matrix cell.

use std::num::NonZeroUsize;

use mv_core::MmuConfig;
use mv_obs::{EscapeOutcome, WalkClass};
use mv_sim::{
    Env, GridCell, GuestPaging, ProfileConfig, SimConfig, Simulation, TelemetryConfig,
};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn cfg(workload: WorkloadKind, env: Env) -> SimConfig {
    SimConfig {
        workload,
        footprint: 48 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: 60_000,
        warmup: 15_000,
        seed: 7,
    }
}

type EnvCtor = fn() -> Env;

const ENVS: [(&str, EnvCtor); 4] = [
    ("native", Env::native),
    ("base virtualized", || Env::base_virtualized(PageSize::Size4K)),
    ("dual direct", Env::dual_direct),
    ("vmm direct", Env::vmm_direct),
];

#[test]
fn observer_does_not_perturb_the_simulation() {
    for (name, env) in ENVS {
        let c = cfg(WorkloadKind::Gups, env());
        let plain = Simulation::run(&c).unwrap();
        let observed = Simulation::run_observed(
            &c,
            MmuConfig::default(),
            TelemetryConfig {
                epoch_len: 10_000,
                flight_capacity: 32,
            },
        )
        .unwrap();

        // MmuCounters is PartialEq over every field: any drift — an extra
        // walk, a perturbed cache, a double-counted cycle — fails here.
        assert_eq!(
            plain.counters, observed.counters,
            "{name}: observation changed the MMU counters"
        );
        assert_eq!(
            plain.translation_cycles, observed.translation_cycles,
            "{name}: observation changed charged cycles"
        );
        assert_eq!(
            plain.overhead, observed.overhead,
            "{name}: observation changed the overhead metric"
        );
        assert_eq!(plain.vm_exits, observed.vm_exits, "{name}: VM exits drifted");
        assert!(plain.telemetry.is_none());
        assert!(observed.telemetry.is_some());
    }
}

#[test]
fn telemetry_agrees_with_the_counters() {
    let c = cfg(WorkloadKind::Graph500, Env::base_virtualized(PageSize::Size4K));
    let r = Simulation::run_observed(
        &c,
        MmuConfig::default(),
        TelemetryConfig {
            epoch_len: 5_000,
            flight_capacity: 16,
        },
    )
    .unwrap();
    let t = r.telemetry.as_ref().unwrap();

    // One event per L1 miss over the measured window.
    assert_eq!(t.events(), r.counters.l1_misses);
    assert_eq!(t.hist().count(), r.counters.l1_misses);

    // Class counts partition the events. Under base virtualized there are
    // no segments and nothing faults, so every L1 miss either hit the L2
    // or walked: the L2-hit class is exactly l1_misses - l2_misses.
    let by_class: u64 = WalkClass::ALL.iter().map(|&c| t.class_count(c)).sum();
    assert_eq!(by_class, t.events(), "classes must partition the events");
    assert_eq!(t.class_count(WalkClass::Faulted), 0);
    assert_eq!(
        t.class_count(WalkClass::L2Hit),
        r.counters.l1_misses - r.counters.l2_misses
    );

    // Cycle totals agree with the counter the simulator charges from.
    assert_eq!(t.hist().sum(), r.counters.translation_cycles);

    // Escape outcomes never exceed the bound checks performed.
    let checked =
        t.escape_count(EscapeOutcome::Passed) + t.escape_count(EscapeOutcome::Escaped);
    assert!(checked <= r.counters.bound_checks);

    // Epoch snapshots tile the window: non-overlapping, ordered, and their
    // event totals add back up to the run total.
    let epochs = t.epochs();
    assert!(!epochs.is_empty());
    let mut last_end = 0;
    for e in epochs {
        assert!(e.start_seq > last_end, "epochs must not overlap");
        assert!(e.end_seq >= e.start_seq);
        last_end = e.end_seq;
    }
    let epoch_events: u64 = epochs.iter().map(|e| e.events).sum();
    assert_eq!(epoch_events, t.events());

    // The flight recorder kept the most recent events, bounded.
    assert!(t.flight().len() <= 16);
    assert_eq!(t.flight().total(), t.events());
}

#[test]
fn profiler_does_not_perturb_the_simulation() {
    for (name, env) in ENVS {
        let c = cfg(WorkloadKind::Gups, env());
        let plain = Simulation::run(&c).unwrap();
        let profiled = Simulation::run_profiled(
            &c,
            MmuConfig::default(),
            None,
            ProfileConfig { epoch_len: 10_000 },
        )
        .unwrap();

        // Attribution turns on per-cell bookkeeping inside the MMU; the
        // contract is that it only *reads* the charges the walker already
        // makes. Any drift in any counter fails here.
        assert_eq!(
            plain.counters, profiled.counters,
            "{name}: profiling changed the MMU counters"
        );
        assert_eq!(
            plain.translation_cycles, profiled.translation_cycles,
            "{name}: profiling changed charged cycles"
        );
        assert_eq!(
            plain.overhead, profiled.overhead,
            "{name}: profiling changed the overhead metric"
        );
        assert_eq!(plain.vm_exits, profiled.vm_exits, "{name}: VM exits drifted");
        assert!(plain.profile.is_none());
        assert!(profiled.profile.is_some(), "{name}: profile missing");
    }
}

#[test]
fn profile_conserves_the_counter_cycles() {
    for (name, env) in ENVS {
        let c = cfg(WorkloadKind::Graph500, env());
        let r = Simulation::run_profiled(
            &c,
            MmuConfig::default(),
            None,
            ProfileConfig { epoch_len: 5_000 },
        )
        .unwrap();
        let p = r.profile.as_ref().unwrap();
        let m = p.total();

        // One walk event per L1 miss, and the matrix total is exactly the
        // cycle counter the simulator charges translation time from.
        assert_eq!(m.events, r.counters.l1_misses, "{name}: event count");
        assert_eq!(
            m.total_cycles, r.counters.translation_cycles,
            "{name}: matrix total must equal the charged translation cycles"
        );
        // Conservation: every charged cycle is attributed to a cell, a
        // hit tier, or fault servicing — nothing leaks, nothing doubles.
        assert_eq!(
            m.attributed_cycles(),
            m.total_cycles,
            "{name}: unattributed walk cycles"
        );
        // VM exits recorded at run scope agree with the measurement.
        assert_eq!(p.vm_exits(), r.vm_exits, "{name}: VM exits");

        // Epoch matrices tile the run total (their merge is how parallel
        // trials reduce, so the partition must be exact).
        let epoch_events: u64 = p.epochs().iter().map(|e| e.matrix.events).sum();
        let epoch_cycles: u64 = p.epochs().iter().map(|e| e.matrix.total_cycles).sum();
        assert_eq!(epoch_events, m.events, "{name}: epoch events");
        assert_eq!(epoch_cycles, m.total_cycles, "{name}: epoch cycles");
    }
}

#[test]
fn profile_rides_the_telemetry_observer_without_interference() {
    let c = cfg(WorkloadKind::Gups, Env::base_virtualized(PageSize::Size4K));
    let plain = Simulation::run(&c).unwrap();
    let both = Simulation::run_profiled(
        &c,
        MmuConfig::default(),
        Some(TelemetryConfig {
            epoch_len: 10_000,
            flight_capacity: 8,
        }),
        ProfileConfig { epoch_len: 10_000 },
    )
    .unwrap();

    // The tee fans one event stream to both observers: counters stay
    // untouched and the two instruments agree with each other.
    assert_eq!(plain.counters, both.counters);
    let t = both.telemetry.as_ref().unwrap();
    let p = both.profile.as_ref().unwrap();
    assert_eq!(t.events(), p.total().events);
    assert_eq!(t.hist().sum(), p.total().total_cycles);
}

#[test]
fn profile_jsonl_is_byte_identical_across_worker_counts() {
    let c = cfg(WorkloadKind::Gups, Env::base_virtualized(PageSize::Size4K));
    let run = |jobs: usize| {
        let cells: Vec<GridCell> = (0..4)
            .map(|t| {
                GridCell::new(c)
                    .trial(t)
                    .profiled(ProfileConfig { epoch_len: 5_000 })
            })
            .collect();
        let report = Simulation::run_grid(&cells, NonZeroUsize::new(jobs).unwrap());
        let merged = report.merged().expect("all trials succeed");
        let mut out = Vec::new();
        merged
            .profile
            .as_ref()
            .expect("merged run keeps the profile")
            .write_jsonl(&mut out)
            .unwrap();
        String::from_utf8(out).unwrap()
    };
    let solo = run(1);
    let pooled = run(4);
    assert_eq!(solo, pooled, "worker count changed profile bytes");

    // And the export round-trips through the mv-prof reader: the parsed
    // run matrix carries the same totals the simulation measured.
    let doc = mv_prof::parse_jsonl(&solo).expect("own export parses");
    assert!(doc.run.events > 0);
    assert_eq!(
        doc.run.total_cycles,
        doc.run.attributed_cycles(),
        "parsed matrix keeps conservation"
    );
}

#[test]
fn jsonl_export_is_line_delimited_and_balanced() {
    let c = cfg(WorkloadKind::Gups, Env::base_virtualized(PageSize::Size4K));
    let r = Simulation::run_observed(
        &c,
        MmuConfig::default(),
        TelemetryConfig {
            epoch_len: 10_000,
            flight_capacity: 8,
        },
    )
    .unwrap();
    let t = r.telemetry.as_ref().unwrap();
    let mut out = Vec::new();
    t.write_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    let lines: Vec<&str> = text.lines().collect();
    // meta + epochs + flight events + summary.
    assert_eq!(lines.len(), 1 + t.epochs().len() + t.flight().len() + 1);
    assert!(lines.first().unwrap().contains("\"type\":\"meta\""));
    assert!(lines.last().unwrap().contains("\"type\":\"summary\""));
    for line in &lines {
        // Minimal structural validity: an object per line with balanced
        // braces and quotes (the exporter emits no nested strings with
        // braces — addresses are hex, labels are snake_case).
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces: {line}");
        assert_eq!(line.matches('"').count() % 2, 0, "unbalanced quotes: {line}");
    }
}
