//! Guard pages via the guest-level escape filter (the paper's Section V
//! extension: "it may be useful to have escape filters at both levels of
//! translation so the guest OS can escape pages as well").
//!
//! A guard page inside a segment-backed primary region escapes segment
//! translation; since the guest page table deliberately leaves it
//! unmapped, touching it faults — while filter false positives are
//! demand-mapped to their segment-computed frames and stay transparent.

use mv_core::{HitPath, MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, OsError, PageSizePolicy};
use mv_types::{AddrRange, Gpa, Gva, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm};

#[test]
fn guard_pages_fault_while_neighbors_stay_fast() {
    let footprint = 32 * MIB;
    let installed = footprint + footprint / 2 + 96 * MIB;
    let mut vmm = Vmm::new(2 * installed + 128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(installed)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = guest.create_primary_region(pid, footprint).unwrap();

    // Dual Direct with both segments.
    let gseg = guest.setup_guest_segment(pid).unwrap();
    let vseg = vmm
        .create_vmm_segment(
            vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
            SegmentOptions::default(),
        )
        .unwrap();

    // Carve two stacks inside the region, each ending at a guard page.
    let guard_a = Gva::new(base.as_u64() + 8 * MIB);
    let guard_b = Gva::new(base.as_u64() + 16 * MIB);
    let filter = guest.protect_guard_pages(pid, &[guard_a, guard_b]).unwrap();

    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    mmu.set_guest_segment(gseg);
    mmu.set_vmm_segment(vseg);
    mmu.set_guest_escape_filter(Some(filter.clone()));

    let access = |mmu: &mut Mmu,
                      guest: &mut GuestOs,
                      vmm: &mut Vmm,
                      va: Gva|
     -> Result<mv_core::AccessOutcome, OsError> {
        loop {
            let outcome = {
                let (gpt, gmem) = guest.pt_and_mem(pid);
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                mmu.access(&ctx, pid as u16, va, false)
            };
            match outcome {
                Ok(out) => return Ok(out),
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    guest.handle_page_fault(pid, gva)?;
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    vmm.handle_nested_fault(vm, gpa).expect("in span");
                }
                Err(f) => panic!("unexpected {f}"),
            }
        }
    };

    // 1. Touching a guard page surfaces a guard fault to the application.
    for guard in [guard_a, guard_b] {
        let err = access(&mut mmu, &mut guest, &mut vmm, guard).unwrap_err();
        assert_eq!(
            err,
            OsError::GuardPageHit {
                va: guard.as_u64()
            }
        );
    }

    // 2. Neighboring pages still take the 0D bypass (unless they happen to
    // be filter false positives, in which case they still translate
    // correctly through paging).
    let mut bypasses = 0;
    for off in [4096u64, 2 * 4096, 8 * 4096] {
        for guard in [guard_a, guard_b] {
            let va = Gva::new(guard.as_u64() - off);
            let out = access(&mut mmu, &mut guest, &mut vmm, va).unwrap();
            let expected_gpa = gseg.translate(va).unwrap();
            let expected_hpa = vseg.translate(expected_gpa).unwrap();
            assert_eq!(out.hpa, expected_hpa, "translation stays correct at {va}");
            if out.path == HitPath::SegmentBypass {
                bypasses += 1;
            }
        }
    }
    assert!(bypasses >= 4, "most non-guard pages use the 0D path: {bypasses}/6");

    // 3. Sweep the whole region: every filter false positive must still
    // translate to its segment-computed address via paging.
    let mut false_positives = 0;
    for page in (0..footprint).step_by(64 * 4096) {
        let va = Gva::new(base.as_u64() + page);
        if va == guard_a || va == guard_b {
            continue;
        }
        if filter.maybe_contains(va.as_u64()) {
            false_positives += 1;
        }
        let out = access(&mut mmu, &mut guest, &mut vmm, va).unwrap();
        let expected = vseg.translate(gseg.translate(va).unwrap()).unwrap();
        assert_eq!(out.hpa, expected);
    }
    // (false_positives is usually 0 with 2 entries in 256 bits; the sweep
    // above proves correctness regardless.)
    let _ = false_positives;
}

#[test]
fn guard_pages_require_a_segment() {
    let mut guest = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    guest.create_primary_region(pid, 8 * MIB).unwrap();
    let err = guest
        .protect_guard_pages(pid, &[Gva::new(0x100_0000_0000)])
        .unwrap_err();
    assert!(matches!(err, OsError::NoPrimaryRegion { .. }));
}
