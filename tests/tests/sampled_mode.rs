//! Differential validation of sampled execution: for every environment of
//! the PAPER_10 catalog, a sampled run's scaled estimates must track the
//! full-fidelity run's measurements within a small relative error, on both
//! a uniform-random workload (gups) and a churn-heavy one (memcached).
//!
//! The bound asserted here (2%) is the one `scripts/ci.sh` gates on and
//! the one EXPERIMENTS.md quotes; tighten it only with data.

use mv_bench::experiments::env_catalog::{NamedEnv, PAPER_10_ENVS};
use mv_core::MmuConfig;
use mv_obs::EpochSnapshot;
use mv_sim::{SampleSpec, SimConfig, SimError, Simulation};
use mv_types::MIB;
use mv_workloads::WorkloadKind;

/// Relative error of `est` against `act`, with an absolute floor so
/// near-zero quantities (e.g. native-DS translation cycles) don't explode
/// the ratio: anything within `floor` absolute counts as exact.
fn rel_err(est: f64, act: f64, floor: f64) -> f64 {
    if (est - act).abs() <= floor {
        0.0
    } else {
        (est - act).abs() / act.abs().max(floor)
    }
}

fn cfg(w: WorkloadKind, (paging, env): NamedEnv) -> SimConfig {
    SimConfig {
        workload: w,
        footprint: 24 * MIB,
        guest_paging: paging,
        env,
        accesses: 40_000,
        // Sampling extrapolates from windows, so it assumes the measured
        // region is (statistically) stationary: the warmup must actually
        // reach steady state. 10k accesses leaves the walk caches still
        // warming on this footprint (per-epoch cycles/miss keeps decaying
        // for ~20k more) and inflates the windows' estimate to ~5%; 30k
        // is comfortably converged.
        warmup: 30_000,
        seed: 42,
    }
}

const SPEC: SampleSpec = SampleSpec {
    window: 2_000,
    interval: 10_000,
    warmup: 500,
};

/// The sampled estimate of the headline quantities stays within 2% of the
/// full-fidelity run across every PAPER_10 environment, for gups and
/// memcached, while measuring only a fifth of the accesses.
#[test]
fn sampled_estimates_track_full_runs_within_two_percent() {
    const BOUND: f64 = 0.02;
    let mut worst: (f64, String) = (0.0, String::new());
    for w in [WorkloadKind::Gups, WorkloadKind::Memcached] {
        for named in PAPER_10_ENVS {
            let cfg = cfg(w, named);
            let full = Simulation::run(&cfg).expect("full run");
            let sampled =
                Simulation::run_sampled(&cfg, MmuConfig::default(), None, SPEC).expect("sampled");
            let summary = sampled.sample.expect("sampled runs carry a summary");
            assert_eq!(summary.spec, SPEC);
            assert_eq!(
                summary.measured_accesses,
                4 * SPEC.window,
                "{}/{}: four windows tile 40k accesses",
                w.label(),
                cfg.label()
            );
            assert_eq!(sampled.accesses, cfg.accesses);
            assert_eq!(sampled.counters.accesses, cfg.accesses);

            // translation_cycles is the figure-of-merit everything else
            // (overhead, the figures' bars) derives from; l1_misses checks
            // that TLB behavior itself — not just its pricing — is tracked.
            let checks = [
                (
                    "translation_cycles",
                    sampled.translation_cycles,
                    full.translation_cycles,
                    // Floor: one walk's worth of cycles per 40k accesses.
                    200.0,
                ),
                (
                    "l1_misses",
                    sampled.counters.l1_misses as f64,
                    full.counters.l1_misses as f64,
                    20.0,
                ),
                ("overhead", sampled.overhead, full.overhead, 0.002),
            ];
            for (what, est, act, floor) in checks {
                let e = rel_err(est, act, floor);
                if e > worst.0 {
                    worst = (
                        e,
                        format!("{}/{} {what}: est {est:.1} vs full {act:.1}", w.label(), cfg.label()),
                    );
                }
                assert!(
                    e <= BOUND,
                    "{}/{}: {what} off by {:.2}% (sampled {est:.1} vs full {act:.1})",
                    w.label(),
                    cfg.label(),
                    e * 100.0
                );
            }
        }
    }
    eprintln!("worst sampled-vs-full deviation: {:.3}% ({})", worst.0 * 100.0, worst.1);
}

/// Sampling refuses instruments that need every access detailed, and
/// refuses malformed schedules, with typed errors.
#[test]
fn sampling_rejects_incompatible_instruments_and_bad_specs() {
    let cfg = cfg(WorkloadKind::Gups, PAPER_10_ENVS[0]);
    let bad = SampleSpec {
        window: 0,
        interval: 10,
        warmup: 0,
    };
    match Simulation::run_sampled(&cfg, MmuConfig::default(), None, bad) {
        Err(SimError::Sample(_)) => {}
        other => panic!("zero window must be rejected, got {other:?}"),
    }
    let fills = SampleSpec {
        window: 10,
        interval: 10,
        warmup: 0,
    };
    assert!(matches!(
        Simulation::run_sampled(&cfg, MmuConfig::default(), None, fills),
        Err(SimError::Sample(_))
    ));
}

/// Telemetry rides a sampled run: epochs cover the measured (detailed)
/// accesses only, and the final count is the measured denominator.
#[test]
fn sampled_telemetry_covers_measured_accesses() {
    let cfg = cfg(WorkloadKind::Gups, PAPER_10_ENVS[2]); // 4K+4K
    let r = Simulation::run_sampled(
        &cfg,
        MmuConfig::default(),
        Some(mv_sim::TelemetryConfig {
            epoch_len: 2_000,
            flight_capacity: 0,
        }),
        SPEC,
    )
    .expect("sampled observed run");
    let t = r.telemetry.expect("telemetry collected");
    let measured = r.sample.expect("summary").measured_accesses;
    let spanned: u64 = t.epochs().iter().map(EpochSnapshot::span).sum();
    assert_eq!(
        spanned, measured,
        "epochs partition the measured accesses, not the configured total"
    );
}
