//! End-to-end integration tests: every mode of Figure 3 runs the full
//! stack and produces sane, correctly-ordered overheads.

use mv_sim::{Env, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn cfg(workload: WorkloadKind, env: Env) -> SimConfig {
    SimConfig {
        workload,
        footprint: 32 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: 60_000,
        warmup: 20_000,
        seed: 7,
    }
}

#[test]
fn all_environments_run_to_completion() {
    let envs = [
        Env::native(),
        Env::native_direct(),
        Env::base_virtualized(PageSize::Size4K),
        Env::base_virtualized(PageSize::Size2M),
        Env::vmm_direct(),
        Env::guest_direct(PageSize::Size4K),
        Env::dual_direct(),
        Env::Shadow {
            nested: PageSize::Size4K,
        },
    ];
    for env in envs {
        let c = cfg(WorkloadKind::Gups, env);
        let r = Simulation::run(&c).unwrap_or_else(|e| panic!("{}: {e}", c.label()));
        assert_eq!(r.accesses, 60_000);
        assert!(r.overhead >= 0.0, "{}: negative overhead", r.label);
        assert!(r.counters.accesses >= 60_000, "retries may add accesses");
    }
}

#[test]
fn virtualization_multiplies_native_overhead() {
    // The paper's headline observation: 2D walks multiply translation
    // overhead vs native (≈3.6× geomean increase at 4K+4K).
    let native = Simulation::run(&cfg(WorkloadKind::Gups, Env::native())).unwrap();
    let virt =
        Simulation::run(&cfg(WorkloadKind::Gups, Env::base_virtualized(PageSize::Size4K)))
            .unwrap();
    assert!(
        virt.overhead > 1.5 * native.overhead,
        "virtualized {:.3} should far exceed native {:.3}",
        virt.overhead,
        native.overhead
    );
    // And cycles-per-miss grows (paper: ~2.4x at 4K+4K).
    assert!(virt.cycles_per_miss() > 1.5 * native.cycles_per_miss());
}

#[test]
fn proposed_modes_recover_native_performance() {
    let native = Simulation::run(&cfg(WorkloadKind::Gups, Env::native())).unwrap();
    let base = Simulation::run(&cfg(
        WorkloadKind::Gups,
        Env::base_virtualized(PageSize::Size4K),
    ))
    .unwrap();
    let vd = Simulation::run(&cfg(WorkloadKind::Gups, Env::vmm_direct())).unwrap();
    let gd = Simulation::run(&cfg(WorkloadKind::Gups, Env::guest_direct(PageSize::Size4K)))
        .unwrap();
    let dd = Simulation::run(&cfg(WorkloadKind::Gups, Env::dual_direct())).unwrap();

    // VMM Direct ≈ native (paper: 2% slower geomean).
    assert!(
        vd.overhead < base.overhead,
        "VD {:.3} must beat base {:.3}",
        vd.overhead,
        base.overhead
    );
    assert!(
        vd.overhead < 1.5 * native.overhead + 0.02,
        "VD {:.3} should approach native {:.3}",
        vd.overhead,
        native.overhead
    );
    // Guest Direct ≈ native for big-memory workloads.
    assert!(gd.overhead < base.overhead);
    // Dual Direct ≈ zero.
    assert!(
        dd.overhead < 0.01,
        "DD overhead {:.4} must be negligible",
        dd.overhead
    );
    assert!(dd.f_dd() > 0.95, "nearly all misses covered by both segments");
}

#[test]
fn segment_coverage_fractions_partition_misses() {
    let r = Simulation::run(&cfg(WorkloadKind::Graph500, Env::dual_direct())).unwrap();
    let sum = r.f_dd() + r.f_vd() + r.f_gd();
    assert!(sum <= 1.0 + 1e-9);
    assert!(r.f_dd() > 0.5, "the primary region dominates accesses");
}

#[test]
fn nested_entries_pollute_the_shared_l2() {
    let r = Simulation::run(&cfg(
        WorkloadKind::Gups,
        Env::base_virtualized(PageSize::Size4K),
    ))
    .unwrap();
    let (nested_lookups, _) = r.nested_l2;
    assert!(
        nested_lookups > 0,
        "2D walks must consult the shared nested TLB"
    );
    // And the native run never touches nested entries.
    let n = Simulation::run(&cfg(WorkloadKind::Gups, Env::native())).unwrap();
    assert_eq!(n.nested_l2.0, 0);
}

#[test]
fn shadow_paging_hurts_churny_workloads_more() {
    // Small footprint + long run so steady-state churn (not first-touch
    // shadow fills) dominates the exit counts.
    let shadow_cfg = |w| SimConfig {
        footprint: 8 * MIB,
        accesses: 200_000,
        warmup: 100_000,
        ..cfg(
            w,
            Env::Shadow {
                nested: PageSize::Size4K,
            },
        )
    };
    let churny = Simulation::run(&shadow_cfg(WorkloadKind::Memcached)).unwrap();
    let calm = Simulation::run(&shadow_cfg(WorkloadKind::Graph500)).unwrap();
    assert!(
        churny.vm_exits > 5 * calm.vm_exits,
        "memcached churn ({}) must dwarf graph500 ({})",
        churny.vm_exits,
        calm.vm_exits
    );
}

#[test]
fn huge_pages_reduce_overhead_at_both_levels() {
    // The footprint must exceed what the nested TLB and page-walk caches
    // cover, or the nested page size cannot matter at all (at 32 MiB the
    // 4K and 2M nested configurations measure identically).
    let w = WorkloadKind::Gups;
    let big = |env| SimConfig {
        footprint: 256 * MIB,
        ..cfg(w, env)
    };
    let k4 = Simulation::run(&big(Env::base_virtualized(PageSize::Size4K))).unwrap();
    let k4_2m = Simulation::run(&big(Env::base_virtualized(PageSize::Size2M))).unwrap();
    let both_2m = Simulation::run(&SimConfig {
        guest_paging: GuestPaging::Fixed(PageSize::Size2M),
        ..big(Env::base_virtualized(PageSize::Size2M))
    })
    .unwrap();
    assert!(
        k4_2m.overhead < k4.overhead,
        "2M nested pages shorten walks: {:.3} vs {:.3}",
        k4_2m.overhead,
        k4.overhead
    );
    assert!(
        both_2m.overhead < k4.overhead,
        "2M at both levels beats 4K+4K: {:.3} vs {:.3}",
        both_2m.overhead,
        k4.overhead
    );
}
