//! End-to-end acceptance for the telemetry-driven adaptive mode
//! controller: fault storms force demotions, hysteresis-gated promotions
//! bring the run back to Direct within bounded epochs, the translation
//! oracle stays silent across every switch boundary, and the transition
//! log is byte-identical for any worker count.

use std::num::NonZeroUsize;

use mv_adapt::{AdaptSpec, ControllerConfig};
use mv_chaos::{ChaosSpec, DegradeLevel};
use mv_core::MmuConfig;
use mv_sim::{Env, GridCell, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn cfg(env: Env) -> SimConfig {
    SimConfig {
        workload: WorkloadKind::Gups,
        footprint: 16 * MIB,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: 40_000,
        warmup: 2_000,
        seed: 7,
    }
}

fn spec() -> AdaptSpec {
    AdaptSpec {
        epoch_len: 1_000,
        seed: 0xada7,
        config: ControllerConfig::default(),
    }
}

/// A fault storm confined to the middle of the measured window: clean
/// lead-in, 10k accesses of heavy injection, clean recovery phase.
fn storm() -> ChaosSpec {
    ChaosSpec::new(0xc4a05, 50_000).with_storm(10_000, 10_000)
}

#[test]
fn adaptive_run_recovers_to_direct_after_the_storm() {
    let result = Simulation::run_adaptive(
        &cfg(Env::dual_direct()),
        MmuConfig::default(),
        None,
        Some(storm()),
        spec(),
    )
    .expect("adaptive chaos run must degrade, not fail");

    let chaos = result.chaos.expect("chaos report is populated");
    assert!(chaos.survived(), "zero oracle violations expected");
    assert!(chaos.oracle_checks > 0);

    let adapt = result.adapt.expect("adapt report is populated");
    assert!(
        adapt.forced_demotions > 0,
        "the storm's segment losses must force demotions: {adapt:?}"
    );
    assert!(
        adapt.promotions > 0,
        "hysteresis must let the run climb back: {adapt:?}"
    );
    assert_eq!(
        adapt.final_level,
        DegradeLevel::Direct,
        "the run must be home by the end of the clean phase: {adapt:?}"
    );

    // Recovery is bounded: the last transition (the final promotion to
    // Direct) lands within a fixed number of epochs after the storm ends —
    // dwell + quiet gates plus at most one denial-induced backoff round.
    let telemetry = result.telemetry.expect("telemetry attached");
    let transitions = telemetry.transitions();
    assert_eq!(adapt.transitions, transitions.len() as u64);
    let last = transitions.last().expect("transitions were recorded");
    let storm_end = 20_000;
    let bound_epochs = 15;
    assert!(
        last.access < storm_end + bound_epochs * spec().epoch_len,
        "recovery must complete within {bound_epochs} epochs of the storm \
         end, but the last transition was at access {}",
        last.access
    );
    assert!(
        transitions.iter().any(|t| t.cause == "segment_alloc_fail"),
        "forced demotions must be recorded"
    );
    assert!(
        transitions
            .iter()
            .any(|t| t.cause == "promotion" && t.to == "direct/direct"),
        "the promotion home must carry the full per-layer plan label"
    );
}

#[test]
fn transition_log_is_byte_identical_for_any_worker_count() {
    let trials = 6;
    let cells: Vec<GridCell> = (0..trials)
        .map(|t| {
            GridCell::new(cfg(Env::dual_direct()))
                .with_chaos(storm())
                .adaptive(spec())
                .trial(t)
        })
        .collect();

    let digest = |jobs: usize| {
        let report = Simulation::run_grid(&cells, NonZeroUsize::new(jobs).unwrap());
        let mut out = Vec::new();
        for r in report.results() {
            out.extend_from_slice(r.csv_row().as_bytes());
            let t = r.telemetry.as_ref().expect("telemetry attached");
            t.write_jsonl(&mut out).expect("in-memory export");
            out.extend_from_slice(format!("{:?}", r.adapt).as_bytes());
        }
        out
    };

    let one = digest(1);
    assert_eq!(one, digest(4), "jobs 1 vs 4 must match byte for byte");
    assert_eq!(one, digest(8), "jobs 1 vs 8 must match byte for byte");
}

/// Sustained heavy noise (no clean phase at all): the hysteresis window
/// budget must bound promotion attempts, and the rollback backoff must
/// respect its cap — the controller cannot thrash.
#[test]
fn hysteresis_bounds_transitions_under_sustained_noise() {
    let s = spec();
    let result = Simulation::run_adaptive(
        &cfg(Env::dual_direct()),
        MmuConfig::default(),
        None,
        Some(ChaosSpec::new(0xc4a05, 50_000)),
        s,
    )
    .expect("sustained chaos must degrade, not fail");

    let chaos = result.chaos.expect("chaos report");
    assert!(chaos.survived(), "oracle must stay silent while thrashing");
    let adapt = result.adapt.expect("adapt report");

    // Promotion attempts are bounded by the per-window budget.
    let windows = adapt.epochs / s.config.window_epochs + 1;
    assert!(
        adapt.decisions <= windows * s.config.max_promotions_per_window,
        "window budget exceeded: {adapt:?}"
    );
    assert!(
        adapt.max_backoff_epochs <= s.config.backoff_cap_epochs,
        "backoff must respect its cap: {adapt:?}"
    );
    // Every transition is accounted: commits are one record, rollbacks two.
    assert_eq!(
        adapt.transitions,
        adapt.promotions + adapt.forced_demotions + 2 * adapt.rollbacks,
        "{adapt:?}"
    );
}

/// A segmentless environment has nothing to adapt: the controller observes
/// epochs but never moves, and the run is identical to plain chaos.
#[test]
fn segmentless_environment_never_transitions() {
    let result = Simulation::run_adaptive(
        &cfg(Env::base_virtualized(PageSize::Size4K)),
        MmuConfig::default(),
        None,
        Some(storm()),
        spec(),
    )
    .expect("segmentless adaptive run");
    let adapt = result.adapt.expect("adapt report");
    assert!(adapt.epochs > 0, "epochs still observed");
    assert_eq!(adapt.transitions, 0, "nothing to switch: {adapt:?}");
    assert_eq!(adapt.final_level, DegradeLevel::Direct);
    let chaos = result.chaos.expect("chaos report");
    assert!(chaos.survived());
}
