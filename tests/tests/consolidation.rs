//! Server consolidation: two VMs share one physical core, so the VMM
//! segment registers are saved/restored on every VM switch ("On
//! VM-exit/entry, hardware must save/restore BASE_V, LIMIT_V and OFFSET_V
//! along with other VM state" — Section III.A). Each VM keeps its own
//! Dual Direct world and translations never leak across the switch.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{AddrRange, Gpa, Gva, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, VmId, Vmm};
use mv_workloads::WorkloadKind;

struct Tenant {
    vm: VmId,
    guest: GuestOs,
    pid: u32,
    base: u64,
    gseg: mv_core::Segment<Gva, Gpa>,
    vseg: mv_core::Segment<Gpa, mv_types::Hpa>,
}

fn boot_tenant(vmm: &mut Vmm, footprint: u64) -> Tenant {
    let installed = footprint + footprint / 2 + 96 * MIB;
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(installed)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = guest.create_primary_region(pid, footprint).unwrap().as_u64();
    let gseg = guest.setup_guest_segment(pid).unwrap();
    let vseg = vmm
        .create_vmm_segment(
            vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
            SegmentOptions::default(),
        )
        .unwrap();
    Tenant {
        vm,
        guest,
        pid,
        base,
        gseg,
        vseg,
    }
}

/// "VM entry": restore the tenant's segment registers.
fn vm_entry(mmu: &mut Mmu, t: &Tenant) {
    mmu.set_guest_segment(t.gseg);
    mmu.set_vmm_segment(t.vseg);
}

fn access(mmu: &mut Mmu, vmm: &mut Vmm, t: &mut Tenant, va: Gva) -> mv_core::AccessOutcome {
    loop {
        let outcome = {
            let (gpt, gmem) = t.guest.pt_and_mem(t.pid);
            let (npt, hmem) = vmm.npt_and_hmem(t.vm);
            let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
            mmu.access(&ctx, t.pid as u16, va, false)
        };
        match outcome {
            Ok(out) => return out,
            Err(TranslationFault::GuestNotMapped { gva }) => {
                t.guest.handle_page_fault(t.pid, gva).unwrap();
            }
            Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                vmm.handle_nested_fault(t.vm, gpa).unwrap();
            }
            Err(f) => panic!("unexpected {f}"),
        }
    }
}

#[test]
fn two_dual_direct_vms_share_a_core() {
    let footprint = 16 * MIB;
    let mut vmm = Vmm::new(GIB);
    const GIB: u64 = 1 << 30;
    let mut a = boot_tenant(&mut vmm, footprint);
    let mut b = boot_tenant(&mut vmm, footprint);
    assert_ne!(
        a.vseg.translate(Gpa::ZERO),
        b.vseg.translate(Gpa::ZERO),
        "tenants have disjoint host backing"
    );

    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });

    // Time-slice the two tenants; the same gVA must translate to each
    // tenant's own host memory, every slice, entirely via the 0D path.
    let mut wa = WorkloadKind::Memcached.build(footprint, 1);
    let mut wb = WorkloadKind::Graph500.build(footprint, 2);
    let mut seen_a = None;
    let mut seen_b = None;
    for _slice in 0..6 {
        vm_entry(&mut mmu, &a);
        for _ in 0..2000 {
            let off = wa.next_access().offset;
            let va = Gva::new(a.base + off);
            let out = access(&mut mmu, &mut vmm, &mut a, va);
            let expect = a
                .vseg
                .translate(a.gseg.translate(Gva::new(a.base + off)).unwrap())
                .unwrap();
            assert_eq!(out.hpa, expect, "tenant A mistranslated");
        }
        let va = Gva::new(a.base);
        let probe = access(&mut mmu, &mut vmm, &mut a, va);
        match seen_a {
            None => seen_a = Some(probe.hpa),
            Some(h) => assert_eq!(h, probe.hpa, "tenant A's memory moved across slices"),
        }

        vm_entry(&mut mmu, &b);
        for _ in 0..2000 {
            let off = wb.next_access().offset;
            let va = Gva::new(b.base + off);
            let out = access(&mut mmu, &mut vmm, &mut b, va);
            let expect = b
                .vseg
                .translate(b.gseg.translate(Gva::new(b.base + off)).unwrap())
                .unwrap();
            assert_eq!(out.hpa, expect, "tenant B mistranslated");
        }
        let va = Gva::new(b.base);
        let probe = access(&mut mmu, &mut vmm, &mut b, va);
        match seen_b {
            None => seen_b = Some(probe.hpa),
            Some(h) => assert_eq!(h, probe.hpa, "tenant B's memory moved across slices"),
        }
    }
    assert_ne!(seen_a, seen_b, "tenants never alias");

    // Every L1 miss inside the primary regions ran 0D: no page walks at
    // all beyond the few demand-fault retries.
    let c = mmu.counters();
    assert!(
        c.cat_both > 2_000,
        "the bypass carried the misses: {}",
        c.cat_both
    );
    assert_eq!(c.cat_neither, 0, "no 2D walks for segment-covered tenants");
}

#[test]
fn forgetting_to_restore_segments_is_caught() {
    // A defensive check: if the hypervisor "forgot" the segment swap on a
    // VM switch, tenant B would read tenant A's memory. The translations
    // diverge, demonstrating why BASE_V/LIMIT_V/OFFSET_V are part of VM
    // state.
    let footprint = 8 * MIB;
    let mut vmm = Vmm::new(512 * MIB);
    let mut a = boot_tenant(&mut vmm, footprint);
    let mut b = boot_tenant(&mut vmm, footprint);

    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    vm_entry(&mut mmu, &a);
    let va_a = Gva::new(a.base);
    let correct_a = access(&mut mmu, &mut vmm, &mut a, va_a).hpa;

    // Switch to B but (incorrectly) keep A's registers: the bypass
    // produces A's host address for B's access.
    let va_b = Gva::new(b.base);
    let wrong = access(&mut mmu, &mut vmm, &mut b, va_b).hpa;
    assert_eq!(wrong, correct_a, "stale registers leak tenant A's memory");

    // With the proper restore, B gets its own memory.
    mmu.flush_asid(b.pid as u16);
    vm_entry(&mut mmu, &b);
    let right = access(&mut mmu, &mut vmm, &mut b, va_b).hpa;
    assert_ne!(right, correct_a);
    assert_eq!(
        right,
        b.vseg.translate(b.gseg.translate(va_b).unwrap()).unwrap()
    );
}
