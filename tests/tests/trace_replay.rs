//! Record/replay equivalence and trace-format pinning.
//!
//! Three layers of guarantee, each pinned by a test here:
//!
//! 1. **Replay fidelity** — recording a live run's access stream and
//!    replaying it through [`Simulation::run_replayed`] reproduces the
//!    live run *byte for byte*: the CSV row, every counter, and the full
//!    telemetry JSONL export. The stream a workload generates depends
//!    only on (footprint, seed), never on the environment, so one
//!    recording replays identically across native, virtualized, and
//!    shadow machines.
//!
//! 2. **Grid determinism** — replayed cells obey the same discipline as
//!    generated ones: a replay grid's merged output is byte-identical at
//!    `--jobs 1`, `4`, and `8`.
//!
//! 3. **On-disk stability** — the golden fixture at
//!    `tests/fixtures/trace_small.mvtr` pins the exact bytes of the
//!    format (the same bytes walked through in `docs/TRACE_FORMAT.md`).
//!    Any encoder change that moves a byte fails here before it can
//!    orphan traces recorded by older builds.
//!
//! To re-record the fixture after an *intentional* format change (which
//! must also bump `mv_trace::VERSION` and rewrite the docs walkthrough):
//!
//! ```text
//! MV_RECORD_FIXTURE=1 cargo test -p mv-integration-tests --test trace_replay
//! ```

use std::num::NonZeroUsize;
use std::path::PathBuf;

use mv_core::MmuConfig;
use mv_sim::{
    Env, GridCell, GuestPaging, MemSink, ReplaySource, SharedTraceWriter, SimConfig, Simulation,
    TelemetryConfig,
};
use mv_trace::{decode_all, write_gc_chase, write_serving, GcChaseParams, ServingParams, TraceHeader, TraceWriter};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

const FOOTPRINT: u64 = 16 * MIB;
const ACCESSES: u64 = 8_000;
const WARMUP: u64 = 2_000;
const SEED: u64 = 42;

fn cfg(workload: WorkloadKind, env: Env) -> SimConfig {
    SimConfig {
        workload,
        footprint: FOOTPRINT,
        guest_paging: GuestPaging::Fixed(PageSize::Size4K),
        env,
        accesses: ACCESSES,
        warmup: WARMUP,
        seed: SEED,
    }
}

fn tcfg() -> TelemetryConfig {
    TelemetryConfig {
        epoch_len: 2_000,
        flight_capacity: 0,
    }
}

/// Records one live run of `workload` (under the native machine — the
/// stream is env-independent) and returns the sealed trace bytes.
fn record(workload: WorkloadKind) -> Vec<u8> {
    let c = cfg(workload, Env::native());
    let header = TraceHeader::for_workload(workload, FOOTPRINT, SEED, WARMUP, ACCESSES);
    let sink = MemSink::new();
    let recorder =
        SharedTraceWriter::create(Box::new(sink.clone()), &header).expect("start recording");
    let live = Simulation::run_recorded(&c, MmuConfig::default(), None, recorder.clone())
        .expect("recorded run");
    let total = recorder.finish().expect("seal trace");
    assert_eq!(
        total,
        WARMUP + ACCESSES,
        "the driver consumes exactly warmup + accesses stream items"
    );
    // Recording must not perturb the run it rides on.
    let bare = Simulation::run(&c).expect("bare run");
    assert_eq!(live.csv_row(), bare.csv_row(), "recording perturbed the run");
    sink.bytes()
}

fn telemetry_jsonl(r: &mv_sim::RunResult) -> Vec<u8> {
    let mut out = Vec::new();
    r.telemetry
        .as_ref()
        .expect("telemetry attached")
        .write_jsonl(&mut out)
        .expect("jsonl export");
    out
}

#[test]
fn replay_reproduces_live_runs_on_all_three_machines() {
    // One recording per workload; gups is churn-free, memcached exercises
    // the churn scheduler and duplicate-fraction path during replay.
    for workload in [WorkloadKind::Gups, WorkloadKind::Memcached] {
        let trace = ReplaySource::bytes(record(workload));
        for env in [
            Env::native(),
            Env::base_virtualized(PageSize::Size4K),
            Env::Shadow {
                nested: PageSize::Size4K,
            },
        ] {
            let c = cfg(workload, env);
            let live = Simulation::run_observed(&c, MmuConfig::default(), tcfg())
                .expect("live observed run");
            let replayed =
                Simulation::run_replayed(&c, MmuConfig::default(), Some(tcfg()), trace.clone())
                    .expect("replayed run");
            assert_eq!(
                live.csv_row(),
                replayed.csv_row(),
                "{workload:?} under {} drifted on replay",
                c.label()
            );
            assert_eq!(live.counters, replayed.counters);
            assert_eq!(live.vm_exits, replayed.vm_exits);
            assert_eq!(
                telemetry_jsonl(&live),
                telemetry_jsonl(&replayed),
                "telemetry diverged on replay of {workload:?} under {}",
                c.label()
            );
        }
    }
}

/// A trace recorded on the 2-level `VirtualizedMachine` replays
/// byte-identically on the 3-level `L2Machine`: the stream depends only
/// on (footprint, seed), so adding a translation layer underneath it
/// must not move a byte of the replayed run's output versus a live one.
#[test]
fn traces_recorded_on_virtualized_replay_identically_on_l2() {
    // Record on the virtualized (2-level) machine specifically.
    let workload = WorkloadKind::Gups;
    let c2 = cfg(workload, Env::base_virtualized(PageSize::Size4K));
    let header = TraceHeader::for_workload(workload, FOOTPRINT, SEED, WARMUP, ACCESSES);
    let sink = MemSink::new();
    let recorder =
        SharedTraceWriter::create(Box::new(sink.clone()), &header).expect("start recording");
    Simulation::run_recorded(&c2, MmuConfig::default(), None, recorder.clone())
        .expect("recorded virtualized run");
    recorder.finish().expect("seal trace");
    let trace = ReplaySource::bytes(sink.bytes());

    // Replay one layer deeper: nested-on-nested (fully paged and triple
    // direct) and shadow-on-nested.
    for env in [
        Env::l2(false, false, false),
        Env::l2(true, true, true),
        Env::l2_shadow(),
    ] {
        let c3 = cfg(workload, env);
        let live = Simulation::run_observed(&c3, MmuConfig::default(), tcfg())
            .expect("live L2 run");
        let replayed =
            Simulation::run_replayed(&c3, MmuConfig::default(), Some(tcfg()), trace.clone())
                .expect("replayed L2 run");
        assert_eq!(
            live.csv_row(),
            replayed.csv_row(),
            "L2 replay drifted under {}",
            c3.label()
        );
        assert_eq!(live.counters, replayed.counters);
        assert_eq!(live.vm_exits, replayed.vm_exits);
        assert_eq!(
            telemetry_jsonl(&live),
            telemetry_jsonl(&replayed),
            "telemetry diverged on L2 replay under {}",
            c3.label()
        );
    }
}

#[test]
fn replay_grid_is_deterministic_across_worker_counts() {
    let trace = ReplaySource::bytes(record(WorkloadKind::Gups));
    let envs = [
        Env::native(),
        Env::base_virtualized(PageSize::Size4K),
        Env::base_virtualized(PageSize::Size2M),
        Env::Shadow {
            nested: PageSize::Size4K,
        },
    ];
    let cells: Vec<GridCell> = envs
        .iter()
        .map(|&env| {
            GridCell::new(cfg(WorkloadKind::Gups, env))
                .observed(tcfg())
                .replayed(trace.clone())
        })
        .collect();

    let fingerprint = |jobs: usize| -> Vec<u8> {
        let report =
            Simulation::run_grid(&cells, NonZeroUsize::new(jobs).expect("positive jobs"));
        assert_eq!(report.failures().count(), 0, "replay cell failed");
        let mut out = Vec::new();
        for r in report.results() {
            out.extend_from_slice(r.csv_row().as_bytes());
            out.push(b'\n');
            out.extend_from_slice(&telemetry_jsonl(r));
        }
        out.extend_from_slice(
            report
                .merged()
                .expect("non-empty grid")
                .csv_row()
                .as_bytes(),
        );
        out
    };

    let j1 = fingerprint(1);
    assert_eq!(j1, fingerprint(4), "jobs=1 vs jobs=4 diverged");
    assert_eq!(j1, fingerprint(8), "jobs=1 vs jobs=8 diverged");
}

#[test]
fn short_traces_loop_deterministically() {
    // Record a small window, then replay it into a run that demands 4x
    // the records: the stream wraps, and doing it twice is identical.
    let trace = ReplaySource::bytes(record(WorkloadKind::Gups));
    let mut big = cfg(WorkloadKind::Gups, Env::base_virtualized(PageSize::Size4K));
    big.accesses = 4 * ACCESSES;
    big.warmup = 4 * WARMUP;
    let a = Simulation::run_replayed(&big, MmuConfig::default(), None, trace.clone())
        .expect("looped replay");
    let b = Simulation::run_replayed(&big, MmuConfig::default(), None, trace)
        .expect("looped replay again");
    assert_eq!(a.csv_row(), b.csv_row());
    assert!(a.counters.accesses > 0);
}

#[test]
fn footprint_mismatch_is_a_typed_sim_error() {
    let trace = ReplaySource::bytes(record(WorkloadKind::Gups));
    let mut wrong = cfg(WorkloadKind::Gups, Env::native());
    wrong.footprint = 2 * FOOTPRINT;
    let err = Simulation::run_replayed(&wrong, MmuConfig::default(), None, trace)
        .expect_err("mismatched footprint must not run");
    assert!(
        matches!(err, mv_sim::SimError::Trace(_)),
        "unexpected error: {err}"
    );
}

#[test]
fn synthesized_traces_drive_every_machine() {
    // Both synthesizers emit streams a machine can execute end to end.
    let mut gc = Vec::new();
    write_gc_chase(&mut gc, &GcChaseParams::new(FOOTPRINT, 12_000, 7)).expect("gc synth");
    let mut serving = Vec::new();
    write_serving(&mut serving, &ServingParams::new(FOOTPRINT, 12_000, 7)).expect("serving synth");

    for (name, bytes) in [("gc_chase", gc), ("serving", serving)] {
        let src = ReplaySource::bytes(bytes);
        let h = src.header().expect("synth header");
        assert_eq!(h.name, name);
        for env in [
            Env::native(),
            Env::base_virtualized(PageSize::Size4K),
            Env::Shadow {
                nested: PageSize::Size4K,
            },
        ] {
            let mut c = cfg(WorkloadKind::Gups, env);
            c.warmup = h.warmup;
            c.accesses = h.accesses;
            let r = Simulation::run_replayed(&c, MmuConfig::default(), None, src.clone())
                .unwrap_or_else(|e| panic!("{name} replay under {} failed: {e}", c.label()));
            assert_eq!(r.workload, name, "result must carry the trace's name");
            assert!(r.counters.accesses > 0);
        }
    }
}

// ---------------------------------------------------------------------
// Golden fixture: the exact bytes documented in docs/TRACE_FORMAT.md.
// ---------------------------------------------------------------------

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("trace_small.mvtr")
}

/// The worked example from `docs/TRACE_FORMAT.md`: a 3-record gups trace
/// whose every byte the spec explains.
fn fixture_trace() -> Vec<u8> {
    let header = TraceHeader {
        name: "gups".to_string(),
        footprint: 0x10000,
        cycles_per_access: 104.0,
        churn_per_million: 0,
        duplicate_fraction: 0.005,
        seed: 42,
        warmup: 1,
        accesses: 2,
    };
    let mut w = TraceWriter::new(Vec::new(), &header).expect("fixture header");
    w.push(0x1000, false).expect("record 1"); // delta +0x1000
    w.push(0x2000, false).expect("record 2"); // stride repeat
    w.push(0x1ff8, true).expect("record 3"); // delta -8, write
    w.finish().expect("seal fixture")
}

#[test]
fn golden_fixture_pins_the_on_disk_bytes() {
    let bytes = fixture_trace();

    if std::env::var_os("MV_RECORD_FIXTURE").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &bytes).unwrap();
        eprintln!("recorded fixture to {}", fixture_path().display());
        return;
    }

    let golden = std::fs::read(fixture_path()).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); record it with \
             MV_RECORD_FIXTURE=1 cargo test --test trace_replay",
            fixture_path().display()
        )
    });
    assert_eq!(
        bytes, golden,
        "trace encoder drifted from the pinned on-disk format; if the \
         change is intentional, bump mv_trace::VERSION, re-record the \
         fixture, and rewrite the docs/TRACE_FORMAT.md walkthrough"
    );

    // The spec's worked example, byte for byte. TRACE_FORMAT.md walks
    // through exactly these offsets; keep the two in lockstep.
    assert_eq!(golden.len(), 98, "fixture length");
    assert_eq!(&golden[0..4], b"MVTR", "magic");
    assert_eq!(&golden[4..6], &[1, 0], "version 1 LE");
    assert_eq!(&golden[6..8], &[0, 0], "flags");
    assert_eq!(&golden[8..16], &0x10000u64.to_le_bytes(), "footprint");
    assert_eq!(&golden[16..24], &104.0f64.to_le_bytes(), "cycles/access");
    assert_eq!(&golden[24..32], &0u64.to_le_bytes(), "churn");
    assert_eq!(&golden[32..40], &0.005f64.to_le_bytes(), "dup fraction");
    assert_eq!(&golden[40..48], &42u64.to_le_bytes(), "seed");
    assert_eq!(&golden[48..56], &1u64.to_le_bytes(), "warmup");
    assert_eq!(&golden[56..64], &2u64.to_le_bytes(), "accesses");
    assert_eq!(golden[64], 4, "name length");
    assert_eq!(&golden[65..69], b"gups", "name");
    assert_eq!(&golden[69..73], &5u32.to_le_bytes(), "chunk payload len");
    assert_eq!(&golden[73..77], &3u32.to_le_bytes(), "chunk record count");
    assert_eq!(
        &golden[77..82],
        &[0x80, 0x80, 0x02, 0x02, 0x3d],
        "varint-encoded records"
    );
    assert_eq!(&golden[82..90], &[0u8; 8], "terminator chunk");
    assert_eq!(&golden[90..98], &3u64.to_le_bytes(), "record-count trailer");

    // And the fixture replays to the records the spec claims.
    let (h, records) = decode_all(&golden).expect("fixture decodes");
    assert_eq!(h.name, "gups");
    let recs: Vec<(u64, bool)> = records.iter().map(|r| (r.offset, r.write)).collect();
    assert_eq!(recs, vec![(0x1000, false), (0x2000, false), (0x1ff8, true)]);
}
