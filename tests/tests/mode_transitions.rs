//! Live mode transitions: the proposed hardware allows switching between
//! translation modes dynamically (Section III.E). These tests drive one VM
//! through the Table III upgrade path while verifying translations stay
//! correct and overheads fall monotonically.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{AddrRange, Gpa, Gva, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm};
use mv_workloads::WorkloadKind;

struct World {
    vmm: Vmm,
    vm: mv_vmm::VmId,
    guest: GuestOs,
    pid: u32,
    base: u64,
}

fn build(footprint: u64) -> World {
    let installed = footprint + footprint / 2 + 96 * MIB;
    let mut vmm = Vmm::new(2 * installed + 128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig {
        boot_reservation: footprint,
        ..GuestConfig::small(installed)
    }).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = guest.create_primary_region(pid, footprint).unwrap().as_u64();
    World {
        vmm,
        vm,
        guest,
        pid,
        base,
    }
}

fn window(w: &mut World, mmu: &mut Mmu, n: u64, seed: u64, footprint: u64) -> (u64, Vec<u64>) {
    let mut workload = WorkloadKind::Graph500.build(footprint, seed);
    mmu.reset_counters();
    let mut hpas = Vec::new();
    for i in 0..n {
        let acc = workload.next_access();
        let va = Gva::new(w.base + acc.offset);
        loop {
            let outcome = {
                let (gpt, gmem) = w.guest.pt_and_mem(w.pid);
                let (npt, hmem) = w.vmm.npt_and_hmem(w.vm);
                let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                mmu.access(&ctx, w.pid as u16, va, false)
            };
            match outcome {
                Ok(out) => {
                    if i % 997 == 0 {
                        hpas.push(out.hpa.as_u64());
                    }
                    break;
                }
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    w.guest.handle_page_fault(w.pid, gva).unwrap();
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    w.vmm.handle_nested_fault(w.vm, gpa).unwrap();
                }
                Err(f) => panic!("unexpected {f}"),
            }
        }
    }
    (mmu.counters().translation_cycles, hpas)
}

#[test]
fn upgrade_path_reduces_overhead_and_preserves_translations() {
    let footprint = 32 * MIB;
    let mut w = build(footprint);
    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::BaseVirtualized,
        ..MmuConfig::default()
    });

    // Stage 0: base virtualized. (Demand paging warms everything.)
    let (base_cycles, _) = window(&mut w, &mut mmu, 60_000, 1, footprint);

    // Stage 1: guest segment → Guest Direct.
    let gseg = w.guest.setup_guest_segment(w.pid).unwrap();
    mmu.set_mode(TranslationMode::GuestDirect);
    mmu.set_guest_segment(gseg);
    let (gd_cycles, _) = window(&mut w, &mut mmu, 60_000, 1, footprint);

    // Stage 2: VMM segment → Dual Direct.
    let installed = w.guest.mem().size_bytes();
    let vseg = w
        .vmm
        .create_vmm_segment(
            w.vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
            SegmentOptions::default(),
        )
        .unwrap();
    mmu.set_mode(TranslationMode::DualDirect);
    mmu.set_guest_segment(gseg);
    mmu.set_vmm_segment(vseg);
    let (dd_cycles, dd_hpas) = window(&mut w, &mut mmu, 60_000, 1, footprint);

    assert!(
        gd_cycles < base_cycles,
        "Guest Direct ({gd_cycles}) must beat base ({base_cycles})"
    );
    assert!(
        dd_cycles < gd_cycles / 10,
        "Dual Direct ({dd_cycles}) must be near zero vs GD ({gd_cycles})"
    );

    // Downgrade again (e.g. to migrate): drop the VMM segment and verify
    // the same stream translates to the same host addresses.
    mmu.set_mode(TranslationMode::GuestDirect);
    mmu.set_guest_segment(gseg);
    let (_, gd_hpas) = window(&mut w, &mut mmu, 60_000, 1, footprint);
    assert_eq!(
        dd_hpas, gd_hpas,
        "mode switches must not change where data lives"
    );
}

#[test]
fn downgrade_enables_migration_then_dual_direct_resumes() {
    let footprint = 16 * MIB;
    let mut w = build(footprint);
    let gseg = w.guest.setup_guest_segment(w.pid).unwrap();
    let installed = w.guest.mem().size_bytes();

    // Dual Direct first.
    let vseg = w
        .vmm
        .create_vmm_segment(
            w.vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
            SegmentOptions::default(),
        )
        .unwrap();
    let _ = vseg;

    // Migration is precluded while the VMM segment exists (Table II).
    assert!(matches!(
        w.vmm.start_migration(w.vm),
        Err(mv_vmm::VmmError::MigrationPrecluded { .. })
    ));

    // Back some memory through nested paging (the migration source set).
    w.vmm
        .map_guest_range(w.vm, AddrRange::new(Gpa::ZERO, Gpa::new(4 * MIB)))
        .unwrap();
    // NOTE: dropping a segment isn't modeled as an explicit VMM API —
    // a fresh VM (or clearing vm state) would; here we verify the gate
    // itself, and that Guest Direct mode (no VMM segment dependence)
    // drives translation correctly during the precluded window.
    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::GuestDirect,
        ..MmuConfig::default()
    });
    mmu.set_guest_segment(gseg);
    let (cycles, _) = window(&mut w, &mut mmu, 20_000, 3, footprint);
    assert!(cycles > 0, "guest direct still walks the nested dimension");
}
