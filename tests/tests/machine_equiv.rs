//! Golden-fixture equivalence proof for the unified `Machine` driver.
//!
//! The fixture at `tests/fixtures/machine_equiv.golden` was recorded from
//! the pre-refactor simulator (the one with three copy-pasted drivers:
//! `run_native` / `run_virtualized` / `run_shadow`) by running the full
//! ten-environment catalog cross-section — native ± direct segment, all
//! four virtualized translation modes, shadow paging at both nested page
//! sizes — over two workloads (gups: churn-free; memcached: heavy
//! allocation churn) × two split-seed trials, all telemetry-observed.
//!
//! The test replays exactly that grid through today's driver and asserts
//! the output is **byte-identical**: every per-cell CSV row and every
//! cell's full telemetry JSONL export, at `jobs = 1` and `jobs = 4`.
//! Any behavioral drift in the access loop — fault servicing order,
//! churn scheduling, warmup counter-reset placement, telemetry
//! attachment — shows up as a diff here.
//!
//! To re-record after an *intentional* behavior change:
//!
//! ```text
//! MV_RECORD_FIXTURE=1 cargo test -p mv-integration-tests --test machine_equiv
//! ```

use std::num::NonZeroUsize;
use std::path::PathBuf;

use mv_bench::experiments::env_catalog::PAPER_10_ENVS;
use mv_obs::TelemetryConfig;
use mv_prof::ProfileConfig;
use mv_sim::{GridCell, SimConfig, Simulation};
use mv_types::MIB;
use mv_workloads::WorkloadKind;

/// Fixture sizing: small enough for the test suite, large enough that
/// every environment takes TLB misses, faults, and (for memcached) a
/// steady stream of churn events through the measured window.
const FOOTPRINT: u64 = 24 * MIB;
const ACCESSES: u64 = 10_000;
const WARMUP: u64 = 2_500;
const SEED: u64 = 42;
const TRIALS: u64 = 2;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("machine_equiv.golden")
}

/// The full grid: every catalog env × {gups, memcached} × two trials,
/// telemetry-observed and attribution-profiled so the fixture covers
/// epochs, histograms, and the full walk-cost matrices too.
fn cells() -> Vec<GridCell> {
    let tcfg = TelemetryConfig {
        epoch_len: 2_000,
        flight_capacity: 0,
    };
    let pcfg = ProfileConfig { epoch_len: 2_000 };
    let mut cells = Vec::new();
    for workload in [WorkloadKind::Gups, WorkloadKind::Memcached] {
        for (paging, env) in PAPER_10_ENVS {
            for trial in 0..TRIALS {
                let cfg = SimConfig {
                    workload,
                    footprint: FOOTPRINT,
                    guest_paging: paging,
                    env,
                    accesses: ACCESSES,
                    warmup: WARMUP,
                    seed: SEED,
                };
                cells.push(GridCell::new(cfg).trial(trial).observed(tcfg).profiled(pcfg));
            }
        }
    }
    cells
}

/// Everything observable about the grid as one byte string: the CSV
/// header, each cell's CSV row in cell order, each cell's full telemetry
/// JSONL export, and each cell's full profile JSONL export.
fn fingerprint(cells: &[GridCell], jobs: usize) -> Vec<u8> {
    let report = Simulation::run_grid(cells, NonZeroUsize::new(jobs).unwrap());
    assert_eq!(report.len(), cells.len());
    if let Some((i, failure)) = report.failures().next() {
        panic!(
            "cell {i} ({} / {}) failed: {failure}",
            cells[i].cfg.workload.label(),
            cells[i].cfg.label()
        );
    }
    let mut out = Vec::new();
    out.extend_from_slice(mv_sim::RunResult::csv_header().as_bytes());
    out.push(b'\n');
    for r in report.results() {
        out.extend_from_slice(r.csv_row().as_bytes());
        out.push(b'\n');
        r.telemetry
            .as_ref()
            .expect("all cells are observed")
            .write_jsonl(&mut out)
            .expect("telemetry serializes");
        r.profile
            .as_ref()
            .expect("all cells are profiled")
            .write_jsonl(&mut out)
            .expect("profile serializes");
    }
    out
}

#[test]
fn driver_output_matches_the_pre_refactor_fixture() {
    let cells = cells();
    let serial = fingerprint(&cells, 1);

    if std::env::var_os("MV_RECORD_FIXTURE").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &serial).unwrap();
        eprintln!(
            "recorded {} bytes to {}",
            serial.len(),
            fixture_path().display()
        );
        return;
    }

    let golden = std::fs::read(fixture_path()).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); record it with \
             MV_RECORD_FIXTURE=1 cargo test --test machine_equiv",
            fixture_path().display()
        )
    });

    // Byte-identical to the pre-refactor drivers…
    assert_eq!(
        serial, golden,
        "driver output drifted from the recorded pre-refactor fixture"
    );
    // …and independent of the worker count.
    let parallel = fingerprint(&cells, 4);
    assert_eq!(serial, parallel, "jobs=1 and jobs=4 outputs must match");
}
