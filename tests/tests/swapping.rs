//! Table II's swapping rows, end to end: guest swapping works outside
//! segments and is precluded inside the guest segment; VMM swapping works
//! outside the VMM segment and is precluded inside it.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault};
use mv_guestos::{GuestConfig, GuestOs, OsError, PageSizePolicy};
use mv_types::{AddrRange, Gpa, PageSize, Prot, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm, VmmError};

#[test]
fn guest_swapping_round_trips_outside_segments() {
    let mut os = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va = os.mmap(pid, MIB, Prot::RW).unwrap();
    os.populate(pid, va, MIB).unwrap();
    let free_before = os.mem().free_bytes();

    os.swap_out(pid, va).unwrap();
    assert!(os.process(pid).is_swapped(va));
    assert_eq!(os.mem().free_bytes(), free_before + 4096, "frame reclaimed");
    {
        let (pt, mem) = os.pt_and_mem(pid);
        assert!(pt.translate(mem, va).is_none(), "mapping removed");
    }

    // The next fault swaps the page back in.
    os.handle_page_fault(pid, va).unwrap();
    assert!(!os.process(pid).is_swapped(va));
    assert_eq!(os.process(pid).swap_ins(), 1);
    let (pt, mem) = os.pt_and_mem(pid);
    assert!(pt.translate(mem, va).is_some());
}

#[test]
fn guest_swapping_is_precluded_inside_the_guest_segment() {
    let mut os = GuestOs::boot(GuestConfig::small(128 * MIB)).unwrap();
    let pid = os.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = os.create_primary_region(pid, 16 * MIB).unwrap();
    os.setup_guest_segment(pid).unwrap();
    let err = os.swap_out(pid, base).unwrap_err();
    assert!(matches!(err, OsError::SwapPrecluded { .. }));

    // Memory outside the segment still swaps (Table II: "limited", not
    // "forbidden").
    let other = os.mmap(pid, MIB, Prot::RW).unwrap();
    os.populate(pid, other, MIB).unwrap();
    os.swap_out(pid, other).unwrap();
}

#[test]
fn vmm_swapping_round_trips_through_nested_faults() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va = guest.mmap(pid, MIB, Prot::RW).unwrap();
    guest.populate(pid, va, MIB).unwrap();
    let gpa = {
        let (gpt, gmem) = guest.pt_and_mem(pid);
        gpt.translate(gmem, va).unwrap().pa
    };
    vmm.handle_nested_fault(vm, gpa).unwrap();
    let host_free = vmm.hmem().free_bytes();

    // Swap the backing out: the VMM reclaims the host frame.
    vmm.swap_out_guest_page(vm, gpa).unwrap();
    assert_eq!(vmm.hmem().free_bytes(), host_free + 4096);

    // The guest doesn't notice until it touches the page: nested faults
    // (for the page and for any unbacked page-table pointers the walk
    // touches) swap everything back in transparently.
    let mut mmu = Mmu::new(MmuConfig::default());
    let mut nested_faults = 0;
    loop {
        let outcome = {
            let (gpt, gmem) = guest.pt_and_mem(pid);
            let (npt, hmem) = vmm.npt_and_hmem(vm);
            let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
            mmu.access(&ctx, pid as u16, va, false)
        };
        match outcome {
            Ok(_) => break,
            Err(TranslationFault::NestedNotMapped { gpa: g, .. }) => {
                nested_faults += 1;
                vmm.handle_nested_fault(vm, g).unwrap();
            }
            other => panic!("expected a nested fault, got {other:?}"),
        }
        assert!(nested_faults < 16, "walk must converge");
    }
    assert!(nested_faults >= 1, "the swapped page must refault");
}

#[test]
fn vmm_swapping_is_precluded_inside_the_vmm_segment() {
    let mut vmm = Vmm::new(512 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    vmm.create_vmm_segment(
        vm,
        AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
        SegmentOptions::default(),
    )
    .unwrap();
    let err = vmm.swap_out_guest_page(vm, Gpa::new(8 * MIB)).unwrap_err();
    assert!(matches!(err, VmmError::SwapPrecluded { .. }));

}

#[test]
fn modes_without_segments_swap_unrestricted() {
    // Base Virtualized / Guest Direct keep 4K nested pages and no VMM
    // segment: any page can be VMM-swapped — the Table II "unrestricted"
    // cells.
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(4 * MIB)))
        .unwrap();
    for page in (0..4 * MIB).step_by(4096 * 64) {
        vmm.swap_out_guest_page(vm, Gpa::new(page)).unwrap();
    }
}
