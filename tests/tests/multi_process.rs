//! Multiple guest processes: per-process page tables and guest segments,
//! with segment registers swapped on context switch (Section III.A: "the
//! guest segment register values are set per guest process and must be set
//! during guest OS context switches").

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{Gva, PageSize, Prot, MIB};
use mv_vmm::{VmConfig, Vmm};

fn access(
    mmu: &mut Mmu,
    guest: &mut GuestOs,
    vmm: &mut Vmm,
    vm: mv_vmm::VmId,
    pid: u32,
    va: Gva,
) -> mv_core::AccessOutcome {
    loop {
        let outcome = {
            let (gpt, gmem) = guest.pt_and_mem(pid);
            let (npt, hmem) = vmm.npt_and_hmem(vm);
            let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
            mmu.access(&ctx, pid as u16, va, false)
        };
        match outcome {
            Ok(out) => return out,
            Err(TranslationFault::GuestNotMapped { gva }) => {
                guest.handle_page_fault(pid, gva).unwrap();
            }
            Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                vmm.handle_nested_fault(vm, gpa).unwrap();
            }
            Err(f) => panic!("unexpected {f}"),
        }
    }
}

#[test]
fn same_va_in_two_processes_translates_differently() {
    let mut vmm = Vmm::new(512 * MIB);
    let vm = vmm.create_vm(VmConfig::new(192 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(192 * MIB)).unwrap();
    let a = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let b = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va_a = guest.mmap(a, MIB, Prot::RW).unwrap();
    let va_b = guest.mmap(b, MIB, Prot::RW).unwrap();
    assert_eq!(va_a, va_b, "identical layouts on purpose");

    let mut mmu = Mmu::new(MmuConfig::default());
    let out_a = access(&mut mmu, &mut guest, &mut vmm, vm, a, va_a);
    let out_b = access(&mut mmu, &mut guest, &mut vmm, vm, b, va_b);
    assert_ne!(out_a.hpa, out_b.hpa, "distinct address spaces");
    // Re-access without flushing: ASIDs keep both resident in the L1.
    mmu.reset_counters();
    assert_eq!(access(&mut mmu, &mut guest, &mut vmm, vm, a, va_a).hpa, out_a.hpa);
    assert_eq!(access(&mut mmu, &mut guest, &mut vmm, vm, b, va_b).hpa, out_b.hpa);
    assert_eq!(mmu.counters().l1_misses, 0, "re-accesses hit L1 per ASID");
}

#[test]
fn per_process_guest_segments_swap_on_context_switch() {
    let mut vmm = Vmm::new(GIB_HALF);
    const GIB_HALF: u64 = 512 * MIB;
    let vm = vmm.create_vm(VmConfig::new(256 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(256 * MIB)).unwrap();

    // Two big-memory processes, each with its own primary region/segment.
    let a = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let b = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    guest.create_primary_region(a, 32 * MIB).unwrap();
    guest.create_primary_region(b, 32 * MIB).unwrap();
    let seg_a = guest.setup_guest_segment(a).unwrap();
    let seg_b = guest.setup_guest_segment(b).unwrap();
    assert_ne!(
        seg_a.translate(seg_a.base()),
        seg_b.translate(seg_b.base()),
        "each process got its own backing"
    );

    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::GuestDirect,
        ..MmuConfig::default()
    });

    // Context switch to A: program A's registers (flushes, as hardware
    // without segment-ASIDs would).
    mmu.set_guest_segment(seg_a);
    let va = seg_a.base();
    let out_a = access(&mut mmu, &mut guest, &mut vmm, vm, a, va);

    // Switch to B.
    mmu.set_guest_segment(seg_b);
    let out_b = access(&mut mmu, &mut guest, &mut vmm, vm, b, va);
    assert_ne!(out_a.hpa, out_b.hpa, "same gVA, different segments");

    // Switch back to A: translation is stable.
    mmu.set_guest_segment(seg_a);
    let again = access(&mut mmu, &mut guest, &mut vmm, vm, a, va);
    assert_eq!(again.hpa, out_a.hpa);
}

#[test]
fn compute_process_coexists_with_big_memory_process() {
    // A VMM Direct host runs both kinds at once: the compute process uses
    // plain paging, the big-memory one adds a guest segment (its own mode
    // per address space — Section III: "each guest process uses one mode").
    let mut vmm = Vmm::new(512 * MIB);
    let vm = vmm.create_vm(VmConfig::new(224 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(224 * MIB)).unwrap();
    let compute = guest.create_process(PageSizePolicy::Thp).unwrap();
    let bigmem = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let cva = guest.mmap(compute, 8 * MIB, Prot::RW).unwrap();
    guest.create_primary_region(bigmem, 32 * MIB).unwrap();
    let seg = guest.setup_guest_segment(bigmem).unwrap();

    let mut vd = Mmu::new(MmuConfig {
        mode: TranslationMode::VmmDirect,
        ..MmuConfig::default()
    });
    let installed = guest.mem().size_bytes();
    let vseg = vmm
        .create_vmm_segment(
            vm,
            mv_types::AddrRange::new(mv_types::Gpa::ZERO, mv_types::Gpa::new(installed)),
            mv_vmm::SegmentOptions::default(),
        )
        .unwrap();
    vd.set_vmm_segment(vseg);
    let out = access(&mut vd, &mut guest, &mut vmm, vm, compute, cva);
    assert!(out.cycles > 0, "compute process walks its guest table");

    let mut dd = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    dd.set_vmm_segment(vseg);
    dd.set_guest_segment(seg);
    let out = access(&mut dd, &mut guest, &mut vmm, vm, bigmem, seg.base());
    assert_eq!(out.path, mv_core::HitPath::SegmentBypass);
}
